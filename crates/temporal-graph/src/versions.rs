//! Versioned copy-on-write snapshots: append timepoints without rebuilding.
//!
//! GraphTempo's evaluation graphs (DBLP, MovieLens, Primary School) grow
//! one timepoint at a time, and the ROADMAP names live ingestion with
//! versioned snapshots directly. [`GraphVersions`] is the writer side of
//! that model, following Raphtory's ingest-while-query design: readers
//! keep querying a published immutable `Arc<TemporalGraph>` epoch while
//! the writer assembles the next epoch copy-on-write and publishes it as a
//! *fresh* `Arc` — no epoch is ever mutated in place.
//!
//! Appending a timepoint is cheap in the history length `T`:
//!
//! * the presence matrices share their `Arc`-backed word bands with the
//!   previous epoch — [`BitMatrix::push_col`] touches only the tail band
//!   (and new-entity rows push in O(1));
//! * attribute tables share their `Arc`-backed column chunks, with one
//!   [`ValueMatrix::push_col`] per time-varying table;
//! * the transposed presence indexes are maintained *incrementally*: the
//!   previous epoch's [`TransposedBitMatrix`] (all of whose columns are
//!   `Arc`-shared) is carried forward with
//!   [`TransposedBitMatrix::grow_rows`] plus one
//!   [`TransposedBitMatrix::push_col`] for the new timepoint — with
//!   per-column dense/sparse re-selection under the graph's
//!   [`SparseMode`] — instead of re-transposing all `T` columns;
//! * every lazily built cache that cannot be carried forward (the
//!   entity-space shard fragments) is un-shared, so no reader of an older
//!   epoch ever observes post-append data and no stale fragment survives
//!   into the new epoch.
//!
//! Total per-append cost is `O(V + E + Δ)` — independent of `T` — where
//! `Δ` is the patch size; `exp_ingest` benches exactly this.

use crate::attrs::AttrId;
use crate::error::GraphError;
use crate::graph::{NodeId, TemporalGraph};
use crate::time::TimeDomain;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tempo_columnar::{
    BitMatrix, BitVec, Interner, PresenceColumn, SparseMode, TransposedBitMatrix, Value,
    ValueMatrix,
};

/// Everything that happens at one new timepoint, addressed by entity
/// *names* (new nodes are registered on first reference, exactly like
/// [`crate::GraphBuilder::get_or_add_node`]).
///
/// The setters mirror the builder's convenience semantics: a time-varying
/// value marks the node present, an edge marks both endpoints present, an
/// edge value marks the edge (and endpoints) present — so a patch can
/// never violate Definition 2.1.
#[derive(Clone, Debug, Default)]
pub struct TimepointPatch {
    label: String,
    nodes: Vec<String>,
    statics: Vec<(String, AttrId, Value)>,
    tv_values: Vec<(String, AttrId, Value)>,
    edges: Vec<(String, String)>,
    edge_values: Vec<(String, String, Value)>,
}

impl TimepointPatch {
    /// Starts an empty patch introducing the time label `label`.
    pub fn new(label: impl Into<String>) -> Self {
        TimepointPatch {
            label: label.into(),
            ..TimepointPatch::default()
        }
    }

    /// The time label this patch appends.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Marks `node` present at the new timepoint.
    pub fn mark_node(&mut self, node: impl Into<String>) -> &mut Self {
        self.nodes.push(node.into());
        self
    }

    /// Sets a static attribute value for `node` (does not imply presence,
    /// like [`crate::GraphBuilder::set_static`]).
    pub fn set_static(&mut self, node: impl Into<String>, attr: AttrId, value: Value) -> &mut Self {
        self.statics.push((node.into(), attr, value));
        self
    }

    /// Sets a time-varying attribute value at the new timepoint, marking
    /// the node present there.
    pub fn set_time_varying(
        &mut self,
        node: impl Into<String>,
        attr: AttrId,
        value: Value,
    ) -> &mut Self {
        self.tv_values.push((node.into(), attr, value));
        self
    }

    /// Records edge `(u, v)` at the new timepoint, marking both endpoints
    /// present there.
    pub fn add_edge(&mut self, u: impl Into<String>, v: impl Into<String>) -> &mut Self {
        self.edges.push((u.into(), v.into()));
        self
    }

    /// Records a numeric value for edge `(u, v)` at the new timepoint,
    /// marking the edge and both endpoints present there.
    pub fn set_edge_value(
        &mut self,
        u: impl Into<String>,
        v: impl Into<String>,
        value: Value,
    ) -> &mut Self {
        self.edge_values.push((u.into(), v.into(), value));
        self
    }

    /// Replays this patch onto a builder at time `t` — the from-scratch
    /// reference path the `append_equivalence` tests compare against: a
    /// graph built by successive appends must be bit-identical to one
    /// built by replaying every patch through [`crate::GraphBuilder`].
    /// Entities intern in the same order as
    /// [`GraphVersions::append_timepoint`], so ids line up exactly.
    ///
    /// # Errors
    /// Returns an error if `t` is outside the builder's domain or an
    /// attribute is addressed with the wrong temporality.
    pub fn apply_to_builder(
        &self,
        b: &mut crate::GraphBuilder,
        t: crate::TimePoint,
    ) -> Result<(), GraphError> {
        for n in &self.nodes {
            let id = b.get_or_add_node(n);
            b.set_presence(id, t)?;
        }
        for (n, attr, v) in &self.statics {
            let id = b.get_or_add_node(n);
            b.set_static(id, *attr, v.clone())?;
        }
        for (n, attr, v) in &self.tv_values {
            let id = b.get_or_add_node(n);
            b.set_time_varying(id, *attr, t, v.clone())?;
        }
        for (u, v) in &self.edges {
            let ui = b.get_or_add_node(u);
            let vi = b.get_or_add_node(v);
            b.add_edge_at(ui, vi, t)?;
        }
        for (u, v, val) in &self.edge_values {
            let ui = b.get_or_add_node(u);
            let vi = b.get_or_add_node(v);
            b.set_edge_value(ui, vi, t, val.clone())?;
        }
        Ok(())
    }
}

/// Writer over a sequence of immutable [`TemporalGraph`] epochs.
///
/// Holds the current epoch as an `Arc<TemporalGraph>`;
/// [`append_timepoint`](Self::append_timepoint) builds the next epoch
/// copy-on-write and atomically replaces the held `Arc`. Readers that
/// cloned an earlier `Arc` keep an unchanged view for as long as they
/// hold it — publish-and-forget, no locks on the read path.
#[derive(Debug)]
pub struct GraphVersions {
    current: Arc<TemporalGraph>,
}

impl GraphVersions {
    /// Starts versioning from an existing graph (epoch taken from the
    /// graph's own stamp, `0` for a freshly built one).
    pub fn new(graph: TemporalGraph) -> Self {
        GraphVersions {
            current: Arc::new(graph),
        }
    }

    /// Starts versioning from an already-shared snapshot.
    pub fn from_arc(graph: Arc<TemporalGraph>) -> Self {
        GraphVersions { current: graph }
    }

    /// The current epoch's snapshot (cheap `Arc` clone).
    pub fn current(&self) -> Arc<TemporalGraph> {
        Arc::clone(&self.current)
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.epoch()
    }

    /// Appends one timepoint copy-on-write and publishes the result as a
    /// fresh immutable epoch, which is both returned and installed as
    /// [`current`](Self::current).
    ///
    /// Cost is `O(V + E + patch)` — independent of the history length:
    /// presence matrices share word bands with the previous epoch, value
    /// matrices share column chunks, and the transposed presence indexes
    /// (when already built on the previous epoch) are carried forward by
    /// appending a single column instead of re-transposing.
    ///
    /// # Errors
    /// Returns an error if the patch's label duplicates an existing time
    /// label or an attribute is addressed with the wrong temporality.
    pub fn append_timepoint(
        &mut self,
        patch: &TimepointPatch,
    ) -> Result<Arc<TemporalGraph>, GraphError> {
        let g = &*self.current;
        let mut labels: Vec<String> = g.domain.labels().to_vec();
        labels.push(patch.label.clone());
        let domain = TimeDomain::new(labels)?;
        let t_new = domain.len() - 1;

        // COW working copies: O(V + E) pointer-sized state (interner and
        // edge list), Arc clones for every matrix band / column chunk.
        let mut node_names = g.node_names.clone();
        let mut node_presence = g.node_presence.clone();
        let mut edges = g.edges.clone();
        let mut edge_index = g.edge_index.clone();
        let mut edge_presence = g.edge_presence.clone();
        let mut static_table = g.static_table.clone();
        let mut tv_tables = g.tv_tables.clone();
        let mut edge_values = g.edge_values.clone();
        let schema = g.schema.clone();

        // Registers a (possibly new) node by name; new rows push in O(1)
        // thanks to implicit zero/null tails.
        fn get_or_add(
            name: &str,
            names: &mut Interner<String>,
            node_presence: &mut BitMatrix,
            static_table: &mut ValueMatrix,
            tv_tables: &mut [ValueMatrix],
        ) -> u32 {
            match names.code(&name.to_owned()) {
                Some(c) => c,
                None => {
                    let c = names.intern(name.to_owned());
                    node_presence.push_empty_row();
                    static_table.push_null_row();
                    for tbl in tv_tables.iter_mut() {
                        tbl.push_null_row();
                    }
                    c
                }
            }
        }

        let mut present_nodes: BTreeSet<u32> = BTreeSet::new();
        let mut present_edges: BTreeSet<u32> = BTreeSet::new();
        // Per-slot (row, value) cells for the new time column.
        let mut tv_cells: Vec<Vec<(u32, Value)>> = vec![Vec::new(); tv_tables.len()];
        let mut ev_cells: Vec<(u32, Value)> = Vec::new();

        for name in &patch.nodes {
            present_nodes.insert(get_or_add(
                name,
                &mut node_names,
                &mut node_presence,
                &mut static_table,
                &mut tv_tables,
            ));
        }
        for (name, attr, value) in &patch.statics {
            let slot =
                schema
                    .static_slot(*attr)
                    .ok_or_else(|| GraphError::AttributeKindMismatch {
                        name: schema.def(*attr).name().to_owned(),
                        expected: "static",
                    })?;
            let row = get_or_add(
                name,
                &mut node_names,
                &mut node_presence,
                &mut static_table,
                &mut tv_tables,
            );
            static_table.set(row as usize, slot, value.clone());
        }
        for (name, attr, value) in &patch.tv_values {
            let slot = schema.time_varying_slot(*attr).ok_or_else(|| {
                GraphError::AttributeKindMismatch {
                    name: schema.def(*attr).name().to_owned(),
                    expected: "time-varying",
                }
            })?;
            let row = get_or_add(
                name,
                &mut node_names,
                &mut node_presence,
                &mut static_table,
                &mut tv_tables,
            );
            present_nodes.insert(row);
            tv_cells[slot].push((row, value.clone()));
        }

        // Resolves a (possibly new) edge row; a new row pushes an empty
        // presence row and (when the graph carries them) a null value row.
        fn edge_row(
            u: u32,
            v: u32,
            edges: &mut Vec<(NodeId, NodeId)>,
            edge_index: &mut HashMap<(u32, u32), u32>,
            edge_presence: &mut BitMatrix,
            edge_values: &mut Option<ValueMatrix>,
        ) -> u32 {
            match edge_index.get(&(u, v)) {
                Some(&i) => i,
                None => {
                    let i = edges.len() as u32;
                    edges.push((NodeId(u), NodeId(v)));
                    edge_presence.push_empty_row();
                    if let Some(ev) = edge_values {
                        ev.push_null_row();
                    }
                    edge_index.insert((u, v), i);
                    i
                }
            }
        }

        // Edge values require the value matrix to exist; materialize it
        // (all-null, old width) before any new edge rows push into it.
        if !patch.edge_values.is_empty() && edge_values.is_none() {
            let mut m = ValueMatrix::new(g.domain.len());
            for _ in 0..edges.len() {
                m.push_null_row();
            }
            edge_values = Some(m);
        }

        for (u, v, val) in patch.edges.iter().map(|(u, v)| (u, v, None)).chain(
            patch
                .edge_values
                .iter()
                .map(|(u, v, val)| (u, v, Some(val))),
        ) {
            let ur = get_or_add(
                u,
                &mut node_names,
                &mut node_presence,
                &mut static_table,
                &mut tv_tables,
            );
            let vr = get_or_add(
                v,
                &mut node_names,
                &mut node_presence,
                &mut static_table,
                &mut tv_tables,
            );
            present_nodes.insert(ur);
            present_nodes.insert(vr);
            let row = edge_row(
                ur,
                vr,
                &mut edges,
                &mut edge_index,
                &mut edge_presence,
                &mut edge_values,
            );
            present_edges.insert(row);
            if let Some(val) = val {
                ev_cells.push((row, val.clone()));
            }
        }

        // Append the new presence column: only the tail band (and any
        // new-entity rows) of each matrix allocates.
        let nc = node_presence.push_col(present_nodes.iter().map(|&r| r as usize));
        debug_assert_eq!(nc, t_new);
        let ec = edge_presence.push_col(present_edges.iter().map(|&r| r as usize));
        debug_assert_eq!(ec, t_new);

        for (slot, cells) in tv_cells.into_iter().enumerate() {
            tv_tables[slot].push_col(column_cells(cells));
        }
        if let Some(ev) = &mut edge_values {
            ev.push_col(column_cells(ev_cells));
        }

        // Carry the transposed presence indexes forward incrementally:
        // grow the row space, then append one column for the new
        // timepoint (re-selecting dense vs sparse for just that column)
        // instead of re-transposing all T columns.
        let node_cols = carry_forward(
            g.node_cols.get(),
            node_names.len(),
            &present_nodes,
            g.sparse_mode,
        );
        let edge_cols = carry_forward(
            g.edge_cols.get(),
            edges.len(),
            &present_edges,
            g.sparse_mode,
        );

        let next = TemporalGraph {
            domain,
            schema,
            node_names,
            node_presence,
            edges,
            edge_index,
            edge_presence,
            static_table,
            tv_tables,
            edge_values,
            sparse_mode: g.sparse_mode,
            node_cols,
            edge_cols,
            // Shard fragments cannot be carried forward (their row ranges
            // re-tile when entities grow); a *fresh* un-shared cache keeps
            // the old epoch's fragments valid for its readers and this
            // epoch's builds invisible to them (the clone-shared-cache
            // bug `invalidate_index_caches` exists for).
            shard_cols: Arc::new(Mutex::new(HashMap::new())),
            epoch: g.epoch.wrapping_add(1),
        };
        debug_assert_eq!(next.validate().map_err(|e| e.to_string()), Ok(()));
        let published = Arc::new(next);
        self.current = Arc::clone(&published);
        Ok(published)
    }
}

/// Builds the dense cell vector for one new [`ValueMatrix`] column from
/// sparse `(row, value)` pairs — only as long as the highest touched row
/// (the chunk's implicit-null tail covers the rest).
fn column_cells(mut cells: Vec<(u32, Value)>) -> Vec<Value> {
    cells.sort_by_key(|&(r, _)| r);
    let mut out = Vec::new();
    for (r, v) in cells {
        let r = r as usize;
        if out.len() <= r {
            out.resize(r + 1, Value::Null);
        }
        out[r] = v; // later writes win, like repeated builder sets
    }
    out
}

/// Carries a transposed presence index into the next epoch: clone the
/// `Arc`-shared columns, grow the row space, append the new timepoint's
/// column under the graph's representation policy. Returns an empty lock
/// (lazy full rebuild on first use) when the previous epoch never built
/// the index.
fn carry_forward(
    prev: Option<&TransposedBitMatrix>,
    new_rows: usize,
    present: &BTreeSet<u32>,
    mode: SparseMode,
) -> OnceLock<TransposedBitMatrix> {
    let lock = OnceLock::new();
    if let Some(prev) = prev {
        let mut t = prev.clone();
        t.grow_rows(new_rows);
        let bv = BitVec::from_indices(new_rows, present.iter().map(|&r| r as usize));
        let col = PresenceColumn::from_bitvec(bv, mode);
        let ins = tempo_instrument::global();
        ins.counter("graph.index.append_cols").inc();
        if col.is_sparse() {
            ins.counter("columnar.presence.sparse_cols").inc();
        } else {
            ins.counter("columnar.presence.dense_cols").inc();
        }
        t.push_col(col);
        debug_assert_eq!(t.check_invariants(), Ok(()));
        let _ = lock.set(t);
    }
    lock
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimePoint;
    use crate::{fixtures, GraphBuilder};

    fn pubs_patch() -> TimepointPatch {
        let g = fixtures::fig1();
        let gender = g.schema().id("gender").unwrap();
        let pubs = g.schema().id("publications").unwrap();
        let f = g.schema().category(gender, "f").unwrap();
        let mut p = TimepointPatch::new("t3");
        p.mark_node("u2")
            .add_edge("u2", "u6")
            .set_time_varying("u6", pubs, Value::Int(4))
            .set_static("u6", gender, f)
            .set_edge_value("u3", "u6", Value::Int(2));
        p
    }

    fn assert_graphs_identical(a: &TemporalGraph, b: &TemporalGraph) {
        assert_eq!(a.domain().labels(), b.domain().labels());
        assert_eq!(a.n_nodes(), b.n_nodes());
        for n in a.node_ids() {
            assert_eq!(a.node_name(n), b.node_name(n));
        }
        assert_eq!(a.node_presence_matrix(), b.node_presence_matrix());
        assert_eq!(a.edge_presence_matrix(), b.edge_presence_matrix());
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.static_table(), b.static_table());
        assert_eq!(a.tv_tables, b.tv_tables);
        assert_eq!(a.edge_values, b.edge_values);
        assert_eq!(a.node_presence_columns(), b.node_presence_columns());
        assert_eq!(a.edge_presence_columns(), b.edge_presence_columns());
    }

    #[test]
    fn append_matches_builder_rebuild() {
        let patch = pubs_patch();
        let mut v = GraphVersions::new(fixtures::fig1());
        let appended = v.append_timepoint(&patch).unwrap();

        let mut b = GraphBuilder::from_graph(fixtures::fig1(), &["t3"]).unwrap();
        patch.apply_to_builder(&mut b, TimePoint(3)).unwrap();
        let rebuilt = b.build().unwrap();

        assert_graphs_identical(&appended, &rebuilt);
        assert_eq!(appended.epoch(), 1);
        assert!(appended.validate().is_ok());
        assert!(appended.has_edge_values());
        let u3 = appended.node_id("u3").unwrap();
        let u6 = appended.node_id("u6").unwrap();
        let e = appended.edge_between(u3, u6).unwrap();
        assert_eq!(appended.edge_value(e, TimePoint(3)), Value::Int(2));
    }

    #[test]
    fn readers_of_an_old_epoch_keep_an_unchanged_view() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let old = v.current();
        let _warm = old.node_presence_columns();
        let new = v.append_timepoint(&pubs_patch()).unwrap();
        assert_eq!(old.domain().len(), 3);
        assert_eq!(old.n_nodes(), 5);
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.node_presence_columns().n_cols(), 3);
        assert_eq!(new.domain().len(), 4);
        assert_eq!(new.n_nodes(), 6);
        assert_eq!(v.epoch(), 1);
        assert!(Arc::ptr_eq(&new, &v.current()));
    }

    #[test]
    fn transposed_indexes_carry_forward_incrementally() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let old = v.current();
        let old_nc = old.node_presence_columns().clone();
        let _ = old.edge_presence_columns();
        let new = v.append_timepoint(&pubs_patch()).unwrap();
        let nc = new.node_presence_columns();
        // all three old columns are Arc-shared, one appended column
        assert_eq!(nc.n_cols(), 4);
        assert_eq!(nc.shared_cols(&old_nc), 3);
        assert_eq!(nc.source_rows(), new.n_nodes());
        for t in 0..4 {
            for r in 0..new.n_nodes() {
                assert_eq!(nc.col(t).get(r), new.node_presence_matrix().get(r, t));
            }
        }
    }

    #[test]
    fn append_without_warm_index_leaves_lazy_rebuild() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let new = v.append_timepoint(&pubs_patch()).unwrap();
        // never built on epoch 0 → built lazily (and correctly) on demand
        let nc = new.node_presence_columns();
        assert_eq!(nc.n_cols(), 4);
        assert_eq!(nc.source_rows(), 6);
    }

    // The append seam of satellite bug #1: fragments built on an old epoch
    // must neither leak into the new epoch nor be poisoned by it.
    #[test]
    fn append_unshares_the_shard_fragment_cache() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let old = v.current();
        let warm = old.presence_shards(2);
        let new = v.append_timepoint(&pubs_patch()).unwrap();
        let fresh = new.presence_shards(2);
        assert!(!Arc::ptr_eq(&warm, &fresh));
        assert_eq!(fresh.node_frag(0).n_cols(), 4);
        assert_eq!(warm.node_frag(0).n_cols(), 3);
        // the new epoch's build did not reach the old epoch's cache
        assert!(Arc::ptr_eq(&warm, &old.presence_shards(2)));
    }

    #[test]
    fn sparse_mode_carries_into_appended_columns() {
        for mode in [SparseMode::ForceDense, SparseMode::ForceSparse] {
            let mut g = fixtures::fig1();
            g.set_sparse_mode(mode);
            let mut v = GraphVersions::new(g);
            let _ = v.current().node_presence_columns();
            let new = v.append_timepoint(&pubs_patch()).unwrap();
            assert_eq!(new.sparse_mode(), mode);
            let nc = new.node_presence_columns();
            assert_eq!(
                nc.col(3).is_sparse(),
                matches!(mode, SparseMode::ForceSparse)
            );
        }
    }

    #[test]
    fn duplicate_label_is_rejected_and_epoch_unchanged() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let err = v.append_timepoint(&TimepointPatch::new("t1"));
        assert!(matches!(err, Err(GraphError::DuplicateTimeLabel(_))));
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.current().domain().len(), 3);
    }

    #[test]
    fn wrong_attribute_kind_is_rejected() {
        let g = fixtures::fig1();
        let gender = g.schema().id("gender").unwrap();
        let pubs = g.schema().id("publications").unwrap();
        let mut v = GraphVersions::new(g);
        let mut p = TimepointPatch::new("t3");
        p.set_time_varying("u1", gender, Value::Int(1));
        assert!(matches!(
            v.append_timepoint(&p),
            Err(GraphError::AttributeKindMismatch { .. })
        ));
        let mut p = TimepointPatch::new("t3");
        p.set_static("u1", pubs, Value::Int(1));
        assert!(matches!(
            v.append_timepoint(&p),
            Err(GraphError::AttributeKindMismatch { .. })
        ));
    }

    #[test]
    fn successive_appends_stack_and_bump_epochs() {
        let mut v = GraphVersions::new(fixtures::fig1());
        let _ = v.current().node_presence_columns();
        for (i, label) in ["t3", "t4", "t5"].iter().enumerate() {
            let mut p = TimepointPatch::new(*label);
            p.mark_node("u1").add_edge("u1", "u4");
            let g = v.append_timepoint(&p).unwrap();
            assert_eq!(g.epoch(), i as u64 + 1);
            assert_eq!(g.domain().len(), 4 + i);
            assert_eq!(g.node_presence_columns().n_cols(), 4 + i);
            assert!(g.validate().is_ok());
        }
    }
}
