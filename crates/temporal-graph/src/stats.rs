//! Dataset statistics: the per-timepoint profiles of Tables 3 and 4.

use crate::graph::TemporalGraph;
use crate::time::TimePoint;
use std::collections::HashSet;
use std::fmt::Write as _;
use tempo_columnar::Value;

/// Per-timepoint and aggregate statistics of a temporal graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Time labels in domain order.
    pub time_labels: Vec<String>,
    /// Nodes existing at each time point.
    pub nodes_per_tp: Vec<usize>,
    /// Edges existing at each time point.
    pub edges_per_tp: Vec<usize>,
    /// Total node rows.
    pub total_nodes: usize,
    /// Total edge rows.
    pub total_edges: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &TemporalGraph) -> Self {
        let nt = g.domain().len();
        let mut nodes_per_tp = Vec::with_capacity(nt);
        let mut edges_per_tp = Vec::with_capacity(nt);
        for t in g.domain().iter() {
            nodes_per_tp.push(g.nodes_at(t));
            edges_per_tp.push(g.edges_at(t));
        }
        GraphStats {
            time_labels: g.domain().labels().to_vec(),
            nodes_per_tp,
            edges_per_tp,
            total_nodes: g.n_nodes(),
            total_edges: g.n_edges(),
        }
    }

    /// Renders the statistics as a paper-style table (cf. Tables 3 and 4):
    /// one column per time point, rows `#Nodes` / `#Edges`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut header = String::from("#TP");
        let mut nodes = String::from("#Nodes");
        let mut edges = String::from("#Edges");
        for (i, label) in self.time_labels.iter().enumerate() {
            let width = label
                .len()
                .max(self.nodes_per_tp[i].to_string().len())
                .max(self.edges_per_tp[i].to_string().len());
            let _ = write!(header, " {label:>width$}");
            let _ = write!(nodes, " {:>width$}", self.nodes_per_tp[i]);
            let _ = write!(edges, " {:>width$}", self.edges_per_tp[i]);
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{nodes}");
        let _ = writeln!(out, "{edges}");
        out
    }
}

/// Number of distinct values an attribute takes at a single time point
/// (drives the aggregate-graph size discussed with Fig. 5).
pub fn attr_domain_size_at(g: &TemporalGraph, attr_name: &str, t: TimePoint) -> usize {
    let Ok(attr) = g.schema().id(attr_name) else {
        return 0;
    };
    let mut seen: HashSet<Value> = HashSet::new();
    for n in g.node_ids() {
        if g.node_alive_at(n, t) {
            let v = g.attr_value(n, attr, t);
            if !v.is_null() {
                seen.insert(v);
            }
        }
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::time::TimePoint;

    #[test]
    fn fig1_stats() {
        let g = fig1();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes_per_tp, vec![4, 3, 3]);
        assert_eq!(s.edges_per_tp, vec![3, 2, 2]);
        assert_eq!(s.total_nodes, 5);
        assert_eq!(s.total_edges, 4);
    }

    #[test]
    fn render_contains_counts() {
        let g = fig1();
        let table = GraphStats::compute(&g).render_table();
        assert!(table.contains("#Nodes"));
        assert!(table.contains("#Edges"));
        assert!(table.contains('4'));
    }

    #[test]
    fn attr_domains() {
        let g = fig1();
        // t0 publications values: {3, 1, 1, 2} → 3 distinct
        assert_eq!(attr_domain_size_at(&g, "publications", TimePoint(0)), 3);
        // gender at t0: {m, f} → 2 distinct
        assert_eq!(attr_domain_size_at(&g, "gender", TimePoint(0)), 2);
        assert_eq!(attr_domain_size_at(&g, "nope", TimePoint(0)), 0);
    }
}
