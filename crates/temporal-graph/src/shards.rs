//! Entity-space shard fragments of the presence-column indexes.
//!
//! A [`PresenceShards`] partitions the node and edge id spaces into `S`
//! contiguous, word-aligned ranges (via [`tempo_columnar::shard_ranges`])
//! and holds one [`TransposedBitMatrix`] presence fragment per shard and
//! dimension — the slice of the whole-graph column index covering just that
//! shard's rows, built by the same cache-blocked transpose
//! ([`tempo_columnar::BitMatrix::transposed_rows_with`]).
//!
//! Fragments let the exploration engine run one chain cursor per shard over
//! an `S`-times-narrower accumulator and reduce the per-shard counts by a
//! plain merge (sum, or vector add of per-group accumulators), so
//! parallelism scales with shards × chains instead of chains only. Shard
//! sets are built lazily and cached per graph and shard count; see
//! [`crate::TemporalGraph::presence_shards`].

use tempo_columnar::TransposedBitMatrix;

/// Per-shard presence fragments of one graph for a fixed shard count.
///
/// Both entity dimensions are partitioned independently: shard `s` covers
/// node rows `node_range(s)` and edge rows `edge_range(s)`. Ranges tile
/// `0..n_nodes` / `0..n_edges` contiguously with word-aligned (multiple of
/// 64) interior boundaries, so whole-graph masks slice into fragment-local
/// masks by a word-range copy. Trailing shards may be empty when the shard
/// count exceeds the entity count — their fragments have zero-width columns
/// and contribute zero to every count.
#[derive(Clone, Debug)]
pub struct PresenceShards {
    pub(crate) node_ranges: Vec<(usize, usize)>,
    pub(crate) edge_ranges: Vec<(usize, usize)>,
    pub(crate) node_frags: Vec<TransposedBitMatrix>,
    pub(crate) edge_frags: Vec<TransposedBitMatrix>,
}

impl PresenceShards {
    /// Number of shards (identical for the node and edge dimensions).
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.node_ranges.len()
    }

    /// Half-open node-id range `(lo, hi)` covered by shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn node_range(&self, s: usize) -> (usize, usize) {
        self.node_ranges[s]
    }

    /// Half-open edge-id range `(lo, hi)` covered by shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn edge_range(&self, s: usize) -> (usize, usize) {
        self.edge_ranges[s]
    }

    /// Node presence fragment of shard `s`: one column per time point over
    /// the shard's node rows (`node_range(s)` width).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn node_frag(&self, s: usize) -> &TransposedBitMatrix {
        &self.node_frags[s]
    }

    /// Edge presence fragment of shard `s`; see
    /// [`node_frag`](Self::node_frag).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    #[inline]
    pub fn edge_frag(&self, s: usize) -> &TransposedBitMatrix {
        &self.edge_frags[s]
    }

    /// Validates the structural invariants: ranges tile the id spaces
    /// contiguously, every fragment spans exactly its range's width, and
    /// each fragment satisfies
    /// [`TransposedBitMatrix::check_invariants`].
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (dim, ranges, frags) in [
            ("node", &self.node_ranges, &self.node_frags),
            ("edge", &self.edge_ranges, &self.edge_frags),
        ] {
            if ranges.len() != frags.len() {
                return Err(format!(
                    "{dim} dimension has {} ranges but {} fragments",
                    ranges.len(),
                    frags.len()
                ));
            }
            for (s, w) in ranges.windows(2).enumerate() {
                if w[0].1 != w[1].0 {
                    return Err(format!(
                        "{dim} shards {s} and {} do not tile contiguously",
                        s + 1
                    ));
                }
            }
            for (s, (&(lo, hi), frag)) in ranges.iter().zip(frags).enumerate() {
                if frag.source_rows() != hi - lo {
                    return Err(format!(
                        "{dim} fragment {s} spans {} rows, want {}",
                        frag.source_rows(),
                        hi - lo
                    ));
                }
                frag.check_invariants()
                    .map_err(|e| format!("{dim} fragment {s}: {e}"))?;
            }
        }
        Ok(())
    }
}
