//! Time domain, time points, intervals, and sets of time points.
//!
//! GraphTempo assumes a finite ordered set of elementary time points
//! (`t_0 … t_{n-1}`: years for DBLP, months for MovieLens). A temporal
//! graph's timestamps `τu(u)` / `τe(e)` are *sets of intervals* over that
//! domain — represented here as [`TimeSet`], a bitset over the domain.
//! Contiguous runs are exposed as [`Interval`]s, the unit the exploration
//! strategies of §3 extend through the union/intersection semi-lattices.

use crate::error::GraphError;
use std::fmt;
use tempo_columnar::BitVec;

/// An index into a [`TimeDomain`] (an elementary time point).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimePoint(pub u32);

impl TimePoint {
    /// The position of the time point within its domain.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The ordered, labeled set of elementary time points of a temporal graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeDomain {
    labels: Vec<String>,
}

impl TimeDomain {
    /// Creates a domain from ordered labels (e.g. `["2000", …, "2020"]`).
    ///
    /// # Errors
    /// Returns an error if the label list is empty or contains duplicates.
    pub fn new<S: Into<String>>(labels: Vec<S>) -> Result<Self, GraphError> {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.is_empty() {
            return Err(GraphError::EmptyTimeDomain);
        }
        for (i, l) in labels.iter().enumerate() {
            if labels[..i].contains(l) {
                return Err(GraphError::DuplicateTimeLabel(l.clone()));
            }
        }
        Ok(TimeDomain { labels })
    }

    /// Creates a domain of `n` points labeled `t0 … t{n-1}`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn indexed(n: usize) -> Self {
        assert!(n > 0, "time domain must not be empty");
        TimeDomain {
            labels: (0..n).map(|i| format!("t{i}")).collect(),
        }
    }

    /// Number of elementary time points.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Time domains are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The label of point `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn label(&self, t: TimePoint) -> &str {
        &self.labels[t.index()]
    }

    /// All labels in order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Looks up a point by label.
    pub fn point(&self, label: &str) -> Option<TimePoint> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| TimePoint(i as u32))
    }

    /// Iterates all points in order.
    pub fn iter(&self) -> impl Iterator<Item = TimePoint> + '_ {
        (0..self.labels.len()).map(|i| TimePoint(i as u32))
    }

    /// The full domain as a [`TimeSet`].
    pub fn all(&self) -> TimeSet {
        TimeSet {
            bits: BitVec::ones(self.len()),
        }
    }
}

/// A contiguous inclusive range of time points `[start, end]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// First point of the interval.
    pub start: TimePoint,
    /// Last point of the interval (inclusive).
    pub end: TimePoint,
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "[{:?}]", self.start)
        } else {
            write!(f, "[{:?},{:?}]", self.start, self.end)
        }
    }
}

impl Interval {
    /// Creates an interval; `start` must not exceed `end`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    pub fn new(start: TimePoint, end: TimePoint) -> Self {
        assert!(start <= end, "interval start must not exceed end");
        Interval { start, end }
    }

    /// A single-point interval.
    pub fn point(t: TimePoint) -> Self {
        Interval { start: t, end: t }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.end.index() - self.start.index() + 1
    }

    /// Intervals always cover at least one point; always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `t` lies within the interval.
    pub fn contains(&self, t: TimePoint) -> bool {
        self.start <= t && t <= self.end
    }

    /// Converts to a [`TimeSet`] over a domain of `domain_len` points.
    ///
    /// # Panics
    /// Panics if the interval exceeds the domain.
    pub fn to_set(&self, domain_len: usize) -> TimeSet {
        assert!(
            self.end.index() < domain_len,
            "interval end {:?} outside domain of {domain_len}",
            self.end
        );
        TimeSet {
            bits: BitVec::from_indices(domain_len, self.start.index()..=self.end.index()),
        }
    }

    /// Iterates the points of the interval in order.
    pub fn iter(&self) -> impl Iterator<Item = TimePoint> {
        (self.start.0..=self.end.0).map(TimePoint)
    }
}

/// A set of time points over a fixed domain — the paper's set of
/// intervals 𝒯, stored as a bitset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TimeSet {
    bits: BitVec,
}

impl fmt::Debug for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "𝒯{{")?;
        let mut first = true;
        for iv in self.intervals() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if iv.start == iv.end {
                write!(f, "{:?}", iv.start)?;
            } else {
                write!(f, "{:?}..{:?}", iv.start, iv.end)?;
            }
        }
        write!(f, "}}")
    }
}

impl TimeSet {
    /// The empty set over a domain of `domain_len` points.
    pub fn empty(domain_len: usize) -> Self {
        TimeSet {
            bits: BitVec::zeros(domain_len),
        }
    }

    /// A singleton set.
    ///
    /// # Panics
    /// Panics if the point is outside the domain.
    pub fn point(domain_len: usize, t: TimePoint) -> Self {
        let mut bits = BitVec::zeros(domain_len);
        bits.set(t.index(), true);
        TimeSet { bits }
    }

    /// Builds a set from explicit point indices.
    ///
    /// # Panics
    /// Panics if any index is outside the domain.
    pub fn from_indices<I: IntoIterator<Item = usize>>(domain_len: usize, idx: I) -> Self {
        TimeSet {
            bits: BitVec::from_indices(domain_len, idx),
        }
    }

    /// Builds a set from a contiguous inclusive index range.
    ///
    /// # Panics
    /// Panics if the range exceeds the domain or is reversed.
    pub fn range(domain_len: usize, start: usize, end: usize) -> Self {
        assert!(start <= end, "range start must not exceed end");
        Interval::new(TimePoint(start as u32), TimePoint(end as u32)).to_set(domain_len)
    }

    /// Wraps an existing bit vector.
    pub fn from_bits(bits: BitVec) -> Self {
        TimeSet { bits }
    }

    /// Adds a point to the set in place (the exploration cursor grows its
    /// scope by one point per extension step).
    ///
    /// # Panics
    /// Panics if the point is outside the domain.
    pub fn insert(&mut self, t: TimePoint) {
        self.bits.set(t.index(), true);
    }

    /// Removes every point, keeping the domain size.
    pub fn clear(&mut self) {
        self.bits.clear_all();
    }

    /// The underlying bit vector (width = domain size).
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Size of the underlying domain.
    pub fn domain_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of points in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones()
    }

    /// True if the set contains no points.
    pub fn is_empty(&self) -> bool {
        self.bits.is_zero()
    }

    /// True if `t` is in the set.
    pub fn contains(&self, t: TimePoint) -> bool {
        t.index() < self.bits.len() && self.bits.get(t.index())
    }

    /// Set union 𝒯₁ ∪ 𝒯₂.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        TimeSet {
            bits: self.bits.or(&other.bits),
        }
    }

    /// Set intersection 𝒯₁ ∩ 𝒯₂.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn intersect(&self, other: &TimeSet) -> TimeSet {
        TimeSet {
            bits: self.bits.and(&other.bits),
        }
    }

    /// True if the two sets share at least one point.
    pub fn intersects(&self, other: &TimeSet) -> bool {
        self.bits.intersects(&other.bits)
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &TimeSet) -> bool {
        other.bits.contains_all(&self.bits)
    }

    /// Earliest point, if the set is non-empty.
    pub fn min(&self) -> Option<TimePoint> {
        self.bits.first_one().map(|i| TimePoint(i as u32))
    }

    /// Latest point, if the set is non-empty.
    pub fn max(&self) -> Option<TimePoint> {
        self.bits.last_one().map(|i| TimePoint(i as u32))
    }

    /// Iterates points in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = TimePoint> + '_ {
        self.bits.iter_ones().map(|i| TimePoint(i as u32))
    }

    /// Decomposes the set into maximal contiguous [`Interval`]s.
    pub fn intervals(&self) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut run: Option<(u32, u32)> = None;
        for t in self.iter() {
            match run {
                Some((s, e)) if e + 1 == t.0 => run = Some((s, t.0)),
                Some((s, e)) => {
                    out.push(Interval::new(TimePoint(s), TimePoint(e)));
                    run = Some((t.0, t.0));
                }
                None => run = Some((t.0, t.0)),
            }
        }
        if let Some((s, e)) = run {
            out.push(Interval::new(TimePoint(s), TimePoint(e)));
        }
        out
    }

    /// True if the set is one contiguous interval.
    pub fn is_contiguous(&self) -> bool {
        self.intervals().len() == 1
    }

    /// Renders the set using a domain's labels, e.g. `[2000, 2004]`.
    ///
    /// # Panics
    /// Panics if the domain size differs from the set's.
    pub fn display(&self, domain: &TimeDomain) -> String {
        assert_eq!(domain.len(), self.domain_len(), "domain size mismatch");
        if self.is_empty() {
            return "[]".to_owned();
        }
        let parts: Vec<String> = self
            .intervals()
            .iter()
            .map(|iv| {
                if iv.start == iv.end {
                    format!("[{}]", domain.label(iv.start))
                } else {
                    format!("[{}, {}]", domain.label(iv.start), domain.label(iv.end))
                }
            })
            .collect();
        parts.join("∪")
    }
}

/// Validates that a time set is non-empty, as required by the temporal
/// operators' interval arguments.
///
/// # Errors
/// Returns [`GraphError::EmptyInterval`] when the set has no points.
pub fn require_non_empty(t: &TimeSet, what: &str) -> Result<(), GraphError> {
    if t.is_empty() {
        Err(GraphError::EmptyInterval(what.to_owned()))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_new_rejects_bad_input() {
        assert!(matches!(
            TimeDomain::new(Vec::<String>::new()),
            Err(GraphError::EmptyTimeDomain)
        ));
        assert!(matches!(
            TimeDomain::new(vec!["a", "a"]),
            Err(GraphError::DuplicateTimeLabel(_))
        ));
    }

    #[test]
    fn domain_lookup() {
        let d = TimeDomain::new(vec!["2000", "2001", "2002"]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.point("2001"), Some(TimePoint(1)));
        assert_eq!(d.point("1999"), None);
        assert_eq!(d.label(TimePoint(2)), "2002");
        assert_eq!(d.iter().count(), 3);
        assert_eq!(d.all().len(), 3);
    }

    #[test]
    fn indexed_domain_labels() {
        let d = TimeDomain::indexed(3);
        assert_eq!(d.labels(), &["t0", "t1", "t2"]);
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(TimePoint(1), TimePoint(3));
        assert_eq!(iv.len(), 3);
        assert!(iv.contains(TimePoint(2)));
        assert!(!iv.contains(TimePoint(0)));
        assert_eq!(iv.iter().collect::<Vec<_>>().len(), 3);
        let s = iv.to_set(5);
        assert_eq!(s.iter().map(|t| t.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn interval_reversed_panics() {
        Interval::new(TimePoint(3), TimePoint(1));
    }

    #[test]
    fn set_ops() {
        let a = TimeSet::from_indices(6, [0, 1, 2]);
        let b = TimeSet::from_indices(6, [2, 3]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersect(&b).len(), 1);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&TimeSet::from_indices(6, [4, 5])));
        assert!(TimeSet::from_indices(6, [1]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.min(), Some(TimePoint(0)));
        assert_eq!(a.max(), Some(TimePoint(2)));
    }

    #[test]
    fn empty_set() {
        let e = TimeSet::empty(4);
        assert!(e.is_empty());
        assert_eq!(e.min(), None);
        assert_eq!(e.intervals(), vec![]);
        assert!(require_non_empty(&e, "𝒯₁").is_err());
        assert!(require_non_empty(&TimeSet::point(4, TimePoint(0)), "𝒯₁").is_ok());
    }

    #[test]
    fn insert_and_clear_mutate_in_place() {
        let mut s = TimeSet::empty(5);
        s.insert(TimePoint(1));
        s.insert(TimePoint(3));
        assert_eq!(s.iter().map(|t| t.0).collect::<Vec<_>>(), vec![1, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.domain_len(), 5);
    }

    #[test]
    fn intervals_decomposition() {
        let s = TimeSet::from_indices(10, [0, 1, 2, 5, 7, 8]);
        let ivs = s.intervals();
        assert_eq!(
            ivs,
            vec![
                Interval::new(TimePoint(0), TimePoint(2)),
                Interval::point(TimePoint(5)),
                Interval::new(TimePoint(7), TimePoint(8)),
            ]
        );
        assert!(!s.is_contiguous());
        assert!(TimeSet::range(10, 3, 6).is_contiguous());
    }

    #[test]
    fn display_with_labels() {
        let d = TimeDomain::new(vec!["May", "Jun", "Jul", "Aug"]).unwrap();
        let s = TimeSet::range(4, 0, 2);
        assert_eq!(s.display(&d), "[May, Jul]");
        let p = TimeSet::point(4, TimePoint(3));
        assert_eq!(p.display(&d), "[Aug]");
        let u = s.union(&p);
        // 0..2 and 3 are adjacent, so they merge into one run
        assert_eq!(u.display(&d), "[May, Aug]");
        assert_eq!(TimeSet::empty(4).display(&d), "[]");
    }

    #[test]
    fn debug_rendering() {
        let s = TimeSet::from_indices(6, [0, 1, 4]);
        assert_eq!(format!("{s:?}"), "𝒯{t0..t1,t4}");
    }
}
