//! The temporal attributed graph (Definition 2.1).
//!
//! A [`TemporalGraph`] stores, following §4 of the paper:
//!
//! * a node presence bit matrix **V** (`|V| × |𝒯|`),
//! * an edge presence bit matrix **E** (`|E| × |𝒯|`),
//! * a static attribute table **S** (`|V| × #static`),
//! * one value matrix **A_i** (`|V| × |𝒯|`) per time-varying attribute.
//!
//! Node labels are interned to dense [`NodeId`]s; edges are directed pairs
//! of node ids deduplicated into [`EdgeId`] rows (an edge that exists in
//! several time points is one row with several presence bits).

use crate::attrs::{AttrId, AttributeSchema, Temporality};
use crate::error::GraphError;
use crate::shards::PresenceShards;
use crate::time::{TimeDomain, TimePoint, TimeSet};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use tempo_columnar::{
    shard_ranges, BitMatrix, Interner, SparseMode, TransposedBitMatrix, Value, ValueMatrix,
};

/// Dense node identifier (row in the node arrays).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Row index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge identifier (row in the edge arrays).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Row index of the edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A temporal attributed graph `G(V, E, τu, τe, A)` over a [`TimeDomain`].
///
/// Optionally, edges carry one numeric *value* per time point (e.g. papers
/// co-authored that year) — the "attributed edges" the paper notes would
/// enable aggregate functions beyond COUNT.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    pub(crate) domain: TimeDomain,
    pub(crate) schema: AttributeSchema,
    pub(crate) node_names: Interner<String>,
    pub(crate) node_presence: BitMatrix,
    pub(crate) edges: Vec<(NodeId, NodeId)>,
    pub(crate) edge_index: HashMap<(u32, u32), u32>,
    pub(crate) edge_presence: BitMatrix,
    pub(crate) static_table: ValueMatrix,
    pub(crate) tv_tables: Vec<ValueMatrix>,
    pub(crate) edge_values: Option<ValueMatrix>,
    /// Representation policy for the cached presence-column indexes. Kept
    /// per graph (never read from the environment) so graphs built under
    /// different policies can coexist in one process; see
    /// [`TemporalGraph::set_sparse_mode`].
    pub(crate) sparse_mode: SparseMode,
    /// Lazily built column-major (time-major) presence indexes, shared
    /// across threads. A clone of the graph carries the cached value along.
    pub(crate) node_cols: OnceLock<TransposedBitMatrix>,
    pub(crate) edge_cols: OnceLock<TransposedBitMatrix>,
    /// Lazily built entity-space shard fragments, keyed by shard count and
    /// cached alongside the whole-graph columns (clones share the cache).
    pub(crate) shard_cols: Arc<Mutex<HashMap<usize, Arc<PresenceShards>>>>,
    /// Monotonic version stamp: `0` for a freshly built graph, bumped by
    /// [`crate::GraphVersions::append_timepoint`] for every published
    /// epoch. Epoch-aware caches downstream compare this on lookup.
    pub(crate) epoch: u64,
}

impl TemporalGraph {
    /// Assembles a graph from raw parts, checking structural invariants:
    /// consistent array shapes, edge endpoints in range, every edge present
    /// only when both endpoints are present, and time-varying values only
    /// where the node is present.
    ///
    /// # Errors
    /// Returns the first violated invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        domain: TimeDomain,
        schema: AttributeSchema,
        node_names: Interner<String>,
        node_presence: BitMatrix,
        edges: Vec<(NodeId, NodeId)>,
        edge_presence: BitMatrix,
        static_table: ValueMatrix,
        tv_tables: Vec<ValueMatrix>,
    ) -> Result<Self, GraphError> {
        Self::from_parts_with_edge_values(
            domain,
            schema,
            node_names,
            node_presence,
            edges,
            edge_presence,
            static_table,
            tv_tables,
            None,
        )
    }

    /// [`TemporalGraph::from_parts`] with an optional edge-value matrix
    /// (`|E| × |𝒯|`; a non-null cell requires the edge present there).
    ///
    /// # Errors
    /// Returns the first violated invariant.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_with_edge_values(
        domain: TimeDomain,
        schema: AttributeSchema,
        node_names: Interner<String>,
        node_presence: BitMatrix,
        edges: Vec<(NodeId, NodeId)>,
        edge_presence: BitMatrix,
        static_table: ValueMatrix,
        tv_tables: Vec<ValueMatrix>,
        edge_values: Option<ValueMatrix>,
    ) -> Result<Self, GraphError> {
        let nt = domain.len();
        let nv = node_names.len();
        if node_presence.nrows() != nv || node_presence.ncols() != nt {
            return Err(GraphError::Format(format!(
                "node presence shape {}x{} does not match {nv} nodes x {nt} time points",
                node_presence.nrows(),
                node_presence.ncols()
            )));
        }
        if edge_presence.nrows() != edges.len() || edge_presence.ncols() != nt {
            return Err(GraphError::Format(format!(
                "edge presence shape {}x{} does not match {} edges x {nt} time points",
                edge_presence.nrows(),
                edge_presence.ncols(),
                edges.len()
            )));
        }
        let n_static = schema.static_ids().len();
        if static_table.nrows() != nv || static_table.ncols() != n_static {
            return Err(GraphError::Format(format!(
                "static table shape {}x{} does not match {nv} nodes x {n_static} static attributes",
                static_table.nrows(),
                static_table.ncols()
            )));
        }
        let n_tv = schema.time_varying_ids().len();
        if tv_tables.len() != n_tv {
            return Err(GraphError::Format(format!(
                "expected {n_tv} time-varying tables, got {}",
                tv_tables.len()
            )));
        }
        for tbl in &tv_tables {
            if tbl.nrows() != nv || tbl.ncols() != nt {
                return Err(GraphError::Format(format!(
                    "time-varying table shape {}x{} does not match {nv} nodes x {nt} time points",
                    tbl.nrows(),
                    tbl.ncols()
                )));
            }
        }
        if let Some(ev) = &edge_values {
            if ev.nrows() != edges.len() || ev.ncols() != nt {
                return Err(GraphError::Format(format!(
                    "edge values shape {}x{} does not match {} edges x {nt} time points",
                    ev.nrows(),
                    ev.ncols(),
                    edges.len()
                )));
            }
        }
        let mut edge_index = HashMap::with_capacity(edges.len());
        for (i, &(u, v)) in edges.iter().enumerate() {
            if u.index() >= nv || v.index() >= nv {
                return Err(GraphError::DanglingEdge {
                    src: format!("{u:?}"),
                    dst: format!("{v:?}"),
                });
            }
            if edge_index.insert((u.0, v.0), i as u32).is_some() {
                return Err(GraphError::Format(format!(
                    "edge ({u:?}, {v:?}) listed twice"
                )));
            }
        }
        let g = TemporalGraph {
            domain,
            schema,
            node_names,
            node_presence,
            edges,
            edge_index,
            edge_presence,
            static_table,
            tv_tables,
            edge_values,
            sparse_mode: SparseMode::Auto,
            node_cols: OnceLock::new(),
            edge_cols: OnceLock::new(),
            shard_cols: Arc::new(Mutex::new(HashMap::new())),
            epoch: 0,
        };
        g.validate()?;
        Ok(g)
    }

    /// Verifies the semantic invariants of Definition 2.1:
    /// * the presence bit matrices are structurally sound (row stride and
    ///   per-row tail hygiene per [`BitMatrix::check_invariants`]) and
    ///   shaped `nodes × |domain|` / `edges × |domain|`;
    /// * an edge exists at `t` only if both endpoints exist at `t`;
    /// * a time-varying attribute has a value at `t` only if the node exists
    ///   at `t`.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        self.node_presence
            .check_invariants()
            .map_err(|e| GraphError::Format(format!("node presence matrix: {e}")))?;
        self.edge_presence
            .check_invariants()
            .map_err(|e| GraphError::Format(format!("edge presence matrix: {e}")))?;
        let nt = self.domain.len();
        if self.node_presence.nrows() != self.n_nodes() || self.node_presence.ncols() != nt {
            return Err(GraphError::Format(format!(
                "node presence shape {}x{} does not match {} nodes x {nt} time points",
                self.node_presence.nrows(),
                self.node_presence.ncols(),
                self.n_nodes()
            )));
        }
        if self.edge_presence.nrows() != self.n_edges() || self.edge_presence.ncols() != nt {
            return Err(GraphError::Format(format!(
                "edge presence shape {}x{} does not match {} edges x {nt} time points",
                self.edge_presence.nrows(),
                self.edge_presence.ncols(),
                self.n_edges()
            )));
        }
        for (ei, &(u, v)) in self.edges.iter().enumerate() {
            for t in self.edge_presence.iter_row_ones(ei) {
                if !self.node_presence.get(u.index(), t) || !self.node_presence.get(v.index(), t) {
                    return Err(GraphError::EdgeWithoutEndpoint {
                        src: self.node_name(u).to_owned(),
                        dst: self.node_name(v).to_owned(),
                        time: self.domain.label(TimePoint(t as u32)).to_owned(),
                    });
                }
            }
        }
        if let Some(ev) = &self.edge_values {
            for e in 0..self.n_edges() {
                for t in 0..self.domain.len() {
                    if !ev.get(e, t).is_null() && !self.edge_presence.get(e, t) {
                        let (u, v) = self.edges[e];
                        return Err(GraphError::AttributePresenceMismatch {
                            node: format!("edge ({}, {})", self.node_name(u), self.node_name(v)),
                            attr: "edge value".to_owned(),
                            time: self.domain.label(TimePoint(t as u32)).to_owned(),
                        });
                    }
                }
            }
        }
        for (slot, &attr) in self.schema.time_varying_ids().iter().enumerate() {
            let tbl = &self.tv_tables[slot];
            for n in 0..self.n_nodes() {
                for t in 0..self.domain.len() {
                    if !tbl.get(n, t).is_null() && !self.node_presence.get(n, t) {
                        return Err(GraphError::AttributePresenceMismatch {
                            node: self.node_name(NodeId(n as u32)).to_owned(),
                            attr: self.schema.def(attr).name().to_owned(),
                            time: self.domain.label(TimePoint(t as u32)).to_owned(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The time domain of the graph.
    pub fn domain(&self) -> &TimeDomain {
        &self.domain
    }

    /// The attribute schema.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// Monotonic version stamp of this snapshot: `0` for a freshly built
    /// graph, incremented by [`crate::GraphVersions::append_timepoint`] for
    /// every published epoch. Caches that can outlive a snapshot (the
    /// materialization and evolution caches in `tempo-core`) store this
    /// stamp and treat a mismatch on lookup as a miss.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of node rows (nodes that exist at any point in the domain).
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edge rows.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The label of a node.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node_name(&self, n: NodeId) -> &str {
        self.node_names
            .resolve(n.0)
            .expect("invariant: node id is in range (documented precondition)")
    }

    /// Looks up a node by label.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.code(&name.to_owned()).map(NodeId)
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes() as u32).map(NodeId)
    }

    /// Iterates all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.n_edges() as u32).map(EdgeId)
    }

    /// The endpoints of an edge.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The edge id between two nodes, if such an edge row exists.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.edge_index.get(&(u.0, v.0)).map(|&i| EdgeId(i))
    }

    /// The timestamp `τu(u)` of a node as a [`TimeSet`].
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn node_timestamp(&self, n: NodeId) -> TimeSet {
        TimeSet::from_bits(self.node_presence.row(n.index()))
    }

    /// The timestamp `τe(e)` of an edge as a [`TimeSet`].
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn edge_timestamp(&self, e: EdgeId) -> TimeSet {
        TimeSet::from_bits(self.edge_presence.row(e.index()))
    }

    /// True if node `n` exists at time `t`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn node_alive_at(&self, n: NodeId, t: TimePoint) -> bool {
        self.node_presence.get(n.index(), t.index())
    }

    /// True if edge `e` exists at time `t`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn edge_alive_at(&self, e: EdgeId, t: TimePoint) -> bool {
        self.edge_presence.get(e.index(), t.index())
    }

    /// The value of attribute `attr` for node `n` at time `t`.
    ///
    /// Static attributes return their single value whenever the node exists
    /// at `t` (and `Null` otherwise); time-varying attributes return the
    /// stored cell.
    ///
    /// # Panics
    /// Panics if ids are out of range.
    pub fn attr_value(&self, n: NodeId, attr: AttrId, t: TimePoint) -> Value {
        match self.schema.def(attr).temporality() {
            Temporality::Static => {
                if self.node_alive_at(n, t) {
                    let slot = self
                        .schema
                        .static_slot(attr)
                        .expect("invariant: static slot exists for a static attribute");
                    self.static_table.get(n.index(), slot).clone()
                } else {
                    Value::Null
                }
            }
            Temporality::TimeVarying => {
                let slot = self
                    .schema
                    .time_varying_slot(attr)
                    .expect("invariant: time-varying slot exists for a time-varying attribute");
                self.tv_tables[slot].get(n.index(), t.index()).clone()
            }
        }
    }

    /// The static value of a static attribute, independent of time.
    ///
    /// # Errors
    /// Returns an error if the attribute is not static.
    ///
    /// # Panics
    /// Panics if ids are out of range.
    pub fn static_value(&self, n: NodeId, attr: AttrId) -> Result<Value, GraphError> {
        let slot =
            self.schema
                .static_slot(attr)
                .ok_or_else(|| GraphError::AttributeKindMismatch {
                    name: self.schema.def(attr).name().to_owned(),
                    expected: "static",
                })?;
        Ok(self.static_table.get(n.index(), slot).clone())
    }

    /// Node ids whose timestamp intersects `mask` ("exists in at least one
    /// point of 𝒯" — union-style membership).
    pub fn nodes_alive_any(&self, mask: &TimeSet) -> Vec<NodeId> {
        (0..self.n_nodes())
            .filter(|&r| self.node_presence.row_any(r, mask.bits()))
            .map(|r| NodeId(r as u32))
            .collect()
    }

    /// Edge ids whose timestamp intersects `mask`.
    pub fn edges_alive_any(&self, mask: &TimeSet) -> Vec<EdgeId> {
        (0..self.n_edges())
            .filter(|&r| self.edge_presence.row_any(r, mask.bits()))
            .map(|r| EdgeId(r as u32))
            .collect()
    }

    /// Number of nodes existing at time `t`.
    pub fn nodes_at(&self, t: TimePoint) -> usize {
        self.node_presence.col_count(t.index())
    }

    /// Number of edges existing at time `t`.
    pub fn edges_at(&self, t: TimePoint) -> usize {
        self.edge_presence.col_count(t.index())
    }

    /// Raw node presence matrix (the paper's array **V**).
    pub fn node_presence_matrix(&self) -> &BitMatrix {
        &self.node_presence
    }

    /// Raw edge presence matrix (the paper's array **E**).
    pub fn edge_presence_matrix(&self) -> &BitMatrix {
        &self.edge_presence
    }

    /// Column-major (time-major) view of the node presence matrix: one
    /// bitset over node rows per time point. Built lazily on first use,
    /// cached for the lifetime of the graph, and shared across threads —
    /// the index backing chain-incremental exploration.
    pub fn node_presence_columns(&self) -> &TransposedBitMatrix {
        self.node_cols
            .get_or_init(|| self.build_transposed(&self.node_presence))
    }

    /// Column-major (time-major) view of the edge presence matrix; see
    /// [`node_presence_columns`](Self::node_presence_columns).
    pub fn edge_presence_columns(&self) -> &TransposedBitMatrix {
        self.edge_cols
            .get_or_init(|| self.build_transposed(&self.edge_presence))
    }

    /// The presence-column representation policy used when the transposed
    /// indexes are built.
    pub fn sparse_mode(&self) -> SparseMode {
        self.sparse_mode
    }

    /// Sets the representation policy for the transposed presence-column
    /// indexes, dropping any index already built under a different policy.
    ///
    /// The policy is explicit per-graph state rather than an environment
    /// read, so two graphs in one process can use different layouts and no
    /// build races a concurrent `env::set_var`. Binaries that honor
    /// `GRAPHTEMPO_SPARSE` read it exactly once at startup (via
    /// [`SparseMode::from_env_value`]) and call this.
    pub fn set_sparse_mode(&mut self, mode: SparseMode) {
        if self.sparse_mode != mode {
            self.sparse_mode = mode;
            self.invalidate_index_caches();
        }
    }

    /// Drops — and, crucially, *un-shares* — every lazily built index
    /// cache: the `node_cols`/`edge_cols` transposed-presence locks and the
    /// shard-fragment cache, exactly as
    /// [`set_sparse_mode`](Self::set_sparse_mode) does on a policy change.
    ///
    /// A clone shares `shard_cols` through its `Arc`, so every mutation
    /// seam (the builder and append paths) must call this — or install
    /// freshly built indexes into fresh locks — before publishing mutated
    /// matrices; otherwise a mutated clone keeps serving fragments built
    /// from the pre-mutation data, and inserting new fragments would
    /// poison the pristine original's cache too.
    pub(crate) fn invalidate_index_caches(&mut self) {
        self.node_cols = OnceLock::new();
        self.edge_cols = OnceLock::new();
        self.shard_cols = Arc::new(Mutex::new(HashMap::new()));
    }

    fn build_transposed(&self, m: &BitMatrix) -> TransposedBitMatrix {
        self.build_transposed_rows(m, 0, m.nrows())
    }

    fn build_transposed_rows(&self, m: &BitMatrix, lo: usize, hi: usize) -> TransposedBitMatrix {
        let ins = tempo_instrument::global();
        let t = {
            let _span = ins.histogram("graph.transpose_build_ns").span();
            ins.counter("graph.transpose_builds").inc();
            m.transposed_rows_with(lo, hi, self.sparse_mode)
        };
        ins.counter("columnar.presence.dense_cols")
            .add(t.n_dense_cols() as u64);
        ins.counter("columnar.presence.sparse_cols")
            .add(t.n_sparse_cols() as u64);
        t
    }

    /// Entity-space shard fragments of the presence indexes for the given
    /// shard count: node and edge id spaces partitioned into `shards`
    /// contiguous word-aligned ranges, with one transposed presence
    /// fragment per shard and dimension (see [`PresenceShards`]).
    ///
    /// Built lazily on first use and cached per shard count for the
    /// lifetime of the graph (clones share the cache); each fragment build
    /// goes through the same cache-blocked transpose — and the same
    /// `graph.transpose_build_ns` instrumentation — as the whole-graph
    /// columns. The build itself is counted under `explore.shard.builds`
    /// and `explore.shard.fragments`.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn presence_shards(&self, shards: usize) -> Arc<PresenceShards> {
        let mut cache = self
            .shard_cols
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(p) = cache.get(&shards) {
            return Arc::clone(p);
        }
        let ins = tempo_instrument::global();
        ins.counter("explore.shard.builds").inc();
        ins.counter("explore.shard.fragments")
            .add(2 * shards as u64);
        let node_ranges = shard_ranges(self.n_nodes(), shards);
        let edge_ranges = shard_ranges(self.n_edges(), shards);
        let p = Arc::new(PresenceShards {
            node_frags: node_ranges
                .iter()
                .map(|&(lo, hi)| self.build_transposed_rows(&self.node_presence, lo, hi))
                .collect(),
            edge_frags: edge_ranges
                .iter()
                .map(|&(lo, hi)| self.build_transposed_rows(&self.edge_presence, lo, hi))
                .collect(),
            node_ranges,
            edge_ranges,
        });
        debug_assert_eq!(p.check_invariants(), Ok(()));
        cache.insert(shards, Arc::clone(&p));
        p
    }

    /// Raw static attribute table (the paper's array **S**).
    pub fn static_table(&self) -> &ValueMatrix {
        &self.static_table
    }

    /// Raw value matrix of a time-varying attribute (the paper's **A_i**).
    ///
    /// # Errors
    /// Returns an error if the attribute is not time-varying.
    pub fn tv_table(&self, attr: AttrId) -> Result<&ValueMatrix, GraphError> {
        let slot = self.schema.time_varying_slot(attr).ok_or_else(|| {
            GraphError::AttributeKindMismatch {
                name: self.schema.def(attr).name().to_owned(),
                expected: "time-varying",
            }
        })?;
        Ok(&self.tv_tables[slot])
    }

    /// Interner mapping node labels to ids (shared with derived graphs so
    /// node identity is preserved across operators).
    pub fn node_interner(&self) -> &Interner<String> {
        &self.node_names
    }

    /// True if the graph carries per-timepoint edge values.
    pub fn has_edge_values(&self) -> bool {
        self.edge_values.is_some()
    }

    /// The value of edge `e` at time `t` (`Null` when the graph has no
    /// edge values, the edge is absent, or no value was recorded).
    ///
    /// # Panics
    /// Panics if ids are out of range.
    pub fn edge_value(&self, e: EdgeId, t: TimePoint) -> Value {
        match &self.edge_values {
            Some(ev) => ev.get(e.index(), t.index()).clone(),
            None => Value::Null,
        }
    }

    /// The raw edge-value matrix, when present.
    pub fn edge_values_matrix(&self) -> Option<&ValueMatrix> {
        self.edge_values.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Builds the paper's running example (Fig. 1): 5 authors over
    /// {t0, t1, t2} with static gender and time-varying #publications.
    pub(crate) fn fig1_graph() -> TemporalGraph {
        crate::fixtures::fig1()
    }

    #[test]
    fn transposed_presence_columns_match_matrices() {
        let g = fig1_graph();
        let nc = g.node_presence_columns();
        assert_eq!(nc.n_cols(), g.domain().len());
        assert_eq!(nc.source_rows(), g.n_nodes());
        for t in 0..g.domain().len() {
            for r in 0..g.n_nodes() {
                assert_eq!(nc.col(t).get(r), g.node_presence_matrix().get(r, t));
            }
            assert_eq!(nc.col(t).count_ones(), g.nodes_at(TimePoint(t as u32)));
        }
        let ec = g.edge_presence_columns();
        for t in 0..g.domain().len() {
            assert_eq!(ec.col(t).count_ones(), g.edges_at(TimePoint(t as u32)));
        }
        // the index is cached: repeated calls return the same allocation
        assert!(std::ptr::eq(nc, g.node_presence_columns()));
        // a clone carries the cache along without rebuilding
        let g2 = g.clone();
        assert_eq!(g2.node_presence_columns(), nc);
    }

    // Regression: the shard-fragment cache is shared through an `Arc`, so
    // a clone that is about to mutate its matrices must un-share it (the
    // same way `set_sparse_mode` does) or it keeps serving fragments built
    // from the pre-mutation data.
    #[test]
    fn invalidated_clone_serves_fresh_fragments_and_columns() {
        let g = fig1_graph();
        let warm = g.presence_shards(2);
        let warm_cols = g.node_presence_columns() as *const _;
        let mut c = g.clone();
        c.invalidate_index_caches();
        let fresh = c.presence_shards(2);
        assert!(
            !Arc::ptr_eq(&warm, &fresh),
            "mutation seam must not serve the shared pre-mutation fragments"
        );
        assert!(!std::ptr::eq(warm_cols, c.node_presence_columns()));
        // the pristine original keeps its own warm caches…
        assert!(Arc::ptr_eq(&warm, &g.presence_shards(2)));
        assert!(std::ptr::eq(warm_cols, g.node_presence_columns()));
        // …and the invalidated clone's inserts no longer reach it
        let _ = c.presence_shards(4);
        assert_eq!(g.shard_cols.lock().unwrap().len(), 1);
    }

    // Regression for the env-driven policy: building one graph used to
    // flip the representation for every other graph in the process.
    #[test]
    fn per_graph_sparse_mode_is_independent() {
        let mut a = fig1_graph();
        let mut b = fig1_graph();
        a.set_sparse_mode(SparseMode::ForceSparse);
        b.set_sparse_mode(SparseMode::ForceDense);
        assert_eq!(a.sparse_mode(), SparseMode::ForceSparse);
        for t in 0..a.domain().len() {
            assert!(a.node_presence_columns().col(t).is_sparse());
            assert!(a.edge_presence_columns().col(t).is_sparse());
            assert!(!b.node_presence_columns().col(t).is_sparse());
            assert!(!b.edge_presence_columns().col(t).is_sparse());
        }
        // flipping the policy after a build drops the cached index …
        a.set_sparse_mode(SparseMode::ForceDense);
        assert!(!a.node_presence_columns().col(0).is_sparse());
        // … while re-setting the same policy keeps it
        let before = a.node_presence_columns() as *const _;
        a.set_sparse_mode(SparseMode::ForceDense);
        assert!(std::ptr::eq(before, a.node_presence_columns()));
    }

    #[test]
    fn fig1_shape() {
        let g = fig1_graph();
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.domain().len(), 3);
        // per-timepoint counts from Fig. 1
        assert_eq!(g.nodes_at(TimePoint(0)), 4);
        assert_eq!(g.nodes_at(TimePoint(1)), 3);
        assert_eq!(g.nodes_at(TimePoint(2)), 3);
    }

    #[test]
    fn fig1_timestamps_match_table2() {
        let g = fig1_graph();
        let u1 = g.node_id("u1").unwrap();
        let u5 = g.node_id("u5").unwrap();
        assert_eq!(
            g.node_timestamp(u1).iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            g.node_timestamp(u5).iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![2]
        );
    }

    #[test]
    fn fig1_attribute_values() {
        let g = fig1_graph();
        let u1 = g.node_id("u1").unwrap();
        let gender = g.schema().id("gender").unwrap();
        let pubs = g.schema().id("publications").unwrap();
        let m = g.schema().category(gender, "m").unwrap();
        assert_eq!(g.attr_value(u1, gender, TimePoint(0)), m);
        // u1 absent at t2 → static attr reads Null
        assert_eq!(g.attr_value(u1, gender, TimePoint(2)), Value::Null);
        assert_eq!(g.attr_value(u1, pubs, TimePoint(0)), Value::Int(3));
        assert_eq!(g.attr_value(u1, pubs, TimePoint(1)), Value::Int(1));
        assert_eq!(g.attr_value(u1, pubs, TimePoint(2)), Value::Null);
        assert_eq!(g.static_value(u1, gender).unwrap(), m);
        assert!(g.static_value(u1, pubs).is_err());
        assert!(g.tv_table(pubs).is_ok());
        assert!(g.tv_table(gender).is_err());
    }

    #[test]
    fn alive_queries() {
        let g = fig1_graph();
        let t0t1 = TimeSet::range(3, 0, 1);
        let alive = g.nodes_alive_any(&t0t1);
        assert_eq!(alive.len(), 4); // u1..u4 (u5 only at t2)
        let t2 = TimeSet::point(3, TimePoint(2));
        assert_eq!(g.nodes_alive_any(&t2).len(), 3);
        assert!(!g.edges_alive_any(&t2).is_empty());
    }

    #[test]
    fn edge_lookup() {
        let g = fig1_graph();
        let u1 = g.node_id("u1").unwrap();
        let u2 = g.node_id("u2").unwrap();
        let e = g.edge_between(u1, u2).expect("u1-u2 collaborate");
        let (a, b) = g.edge_endpoints(e);
        assert_eq!((a, b), (u1, u2));
        assert!(g.edge_alive_at(e, TimePoint(0)));
    }

    #[test]
    fn validate_rejects_edge_without_endpoint() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), AttributeSchema::new());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        // v never present, but edge claimed at t0
        b.add_edge_at_unchecked(u, v, TimePoint(0)).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::EdgeWithoutEndpoint { .. })
        ));
    }

    #[test]
    fn validate_rejects_attr_on_absent_node() {
        let mut schema = AttributeSchema::new();
        schema.declare("pubs", Temporality::TimeVarying).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema);
        let u = b.add_node("u").unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        let pubs = b.schema().id("pubs").unwrap();
        b.set_time_varying_unchecked(u, pubs, TimePoint(1), Value::Int(3))
            .unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::AttributePresenceMismatch { .. })
        ));
    }
}
