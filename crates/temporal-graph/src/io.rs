//! On-disk format for temporal attributed graphs.
//!
//! A graph is saved as a directory of tab-separated files, mirroring the
//! layout of the paper's published datasets (presence arrays plus one file
//! per attribute):
//!
//! * `time.tsv` — ordered time labels;
//! * `schema.tsv` — attribute names and temporality;
//! * `nodes.tsv` — node id + one 0/1 presence column per time point;
//! * `edges.tsv` — src, dst + presence columns;
//! * `static.tsv` — node id + one column per static attribute;
//! * `attr_<name>.tsv` — node id + per-time values for each time-varying
//!   attribute (`-` marks absence).

use crate::attrs::{AttributeSchema, Temporality};
use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{NodeId, TemporalGraph};
use crate::time::{TimeDomain, TimePoint};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use tempo_columnar::{read_frame, write_frame, Frame, Value};

const DELIM: char = '\t';

fn node_label(g: &TemporalGraph, n: crate::graph::NodeId) -> Value {
    Value::Str(g.node_name(n).to_owned())
}

/// Saves `g` into directory `dir` (created if missing).
///
/// # Errors
/// Returns an error on IO failure.
pub fn save_dir(g: &TemporalGraph, dir: &Path) -> Result<(), GraphError> {
    let _span = tempo_instrument::global().histogram("io.save_ns").span();
    std::fs::create_dir_all(dir)?;
    let nt = g.domain().len();
    let tlabels: Vec<String> = g.domain().labels().to_vec();

    // time.tsv
    let mut time = Frame::new(vec!["time"])?;
    for l in &tlabels {
        time.push_row(vec![Value::Str(l.clone())])?;
    }
    write_file(&time, &dir.join("time.tsv"))?;

    // schema.tsv
    let mut schema = Frame::new(vec!["name", "kind"])?;
    for (_, def) in g.schema().iter() {
        let kind = match def.temporality() {
            Temporality::Static => "static",
            Temporality::TimeVarying => "time-varying",
        };
        schema.push_row(vec![
            Value::Str(def.name().to_owned()),
            Value::Str(kind.to_owned()),
        ])?;
    }
    write_file(&schema, &dir.join("schema.tsv"))?;

    // nodes.tsv
    let mut cols = vec!["id".to_owned()];
    cols.extend(tlabels.iter().cloned());
    let mut nodes = Frame::new(cols.clone())?;
    for n in g.node_ids() {
        let mut row = Vec::with_capacity(nt + 1);
        row.push(node_label(g, n));
        for t in 0..nt {
            row.push(Value::Int(i64::from(
                g.node_alive_at(n, TimePoint(t as u32)),
            )));
        }
        nodes.push_row(row)?;
    }
    write_file(&nodes, &dir.join("nodes.tsv"))?;

    // edges.tsv
    let mut ecols = vec!["src".to_owned(), "dst".to_owned()];
    ecols.extend(tlabels.iter().cloned());
    let mut edges = Frame::new(ecols)?;
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        let mut row = Vec::with_capacity(nt + 2);
        row.push(node_label(g, u));
        row.push(node_label(g, v));
        for t in 0..nt {
            row.push(Value::Int(i64::from(
                g.edge_alive_at(e, TimePoint(t as u32)),
            )));
        }
        edges.push_row(row)?;
    }
    write_file(&edges, &dir.join("edges.tsv"))?;

    // static.tsv
    let static_ids = g.schema().static_ids();
    let mut scols = vec!["id".to_owned()];
    scols.extend(
        static_ids
            .iter()
            .map(|&a| g.schema().def(a).name().to_owned()),
    );
    let mut stat = Frame::new(scols)?;
    for n in g.node_ids() {
        let mut row = Vec::with_capacity(static_ids.len() + 1);
        row.push(node_label(g, n));
        for &a in &static_ids {
            let v = g
                .static_value(n, a)
                .expect("invariant: id came from static_ids, so the attribute is static");
            row.push(match v {
                Value::Null => Value::Null,
                Value::Cat(c) => Value::Str(
                    g.schema()
                        .def(a)
                        .category_label(c)
                        .cloned()
                        .unwrap_or_else(|| format!("#{c}")),
                ),
                other => other,
            });
        }
        stat.push_row(row)?;
    }
    write_file(&stat, &dir.join("static.tsv"))?;

    // edge_values.tsv (only when the graph carries edge values)
    if let Some(ev) = g.edge_values_matrix() {
        let mut vcols = vec!["src".to_owned(), "dst".to_owned()];
        vcols.extend(tlabels.iter().cloned());
        let mut vf = Frame::new(vcols)?;
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let mut row = Vec::with_capacity(nt + 2);
            row.push(node_label(g, u));
            row.push(node_label(g, v));
            for t in 0..nt {
                row.push(ev.get(e.index(), t).clone());
            }
            vf.push_row(row)?;
        }
        write_file(&vf, &dir.join("edge_values.tsv"))?;
    }

    // attr_<name>.tsv
    for &a in &g.schema().time_varying_ids() {
        let def = g.schema().def(a);
        let tbl = g
            .tv_table(a)
            .expect("invariant: id came from time_varying_ids, so a table exists");
        let mut acols = vec!["id".to_owned()];
        acols.extend(tlabels.iter().cloned());
        let mut af = Frame::new(acols)?;
        for n in g.node_ids() {
            let mut row = Vec::with_capacity(nt + 1);
            row.push(node_label(g, n));
            for t in 0..nt {
                row.push(match tbl.get(n.index(), t) {
                    Value::Cat(c) => Value::Str(
                        def.category_label(*c)
                            .cloned()
                            .unwrap_or_else(|| format!("#{c}")),
                    ),
                    other => other.clone(),
                });
            }
            af.push_row(row)?;
        }
        write_file(&af, &dir.join(format!("attr_{}.tsv", def.name())))?;
    }
    Ok(())
}

fn write_file(f: &Frame, path: &Path) -> Result<(), GraphError> {
    let ins = tempo_instrument::global();
    ins.counter("io.write.rows").add(f.nrows() as u64);
    ins.counter("io.write.cells")
        .add((f.nrows() * f.ncols()) as u64);
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_frame(f, &mut w, DELIM)?;
    Ok(())
}

fn read_file(path: &Path) -> Result<Frame, GraphError> {
    let file = File::open(path)
        .map_err(|e| GraphError::Format(format!("cannot open {}: {e}", path.display())))?;
    let f = read_frame(BufReader::new(file), DELIM)?;
    let ins = tempo_instrument::global();
    ins.counter("io.read.rows").add(f.nrows() as u64);
    ins.counter("io.read.cells")
        .add((f.nrows() * f.ncols()) as u64);
    Ok(f)
}

/// Resolves a node id that must already be declared in `nodes.tsv`.
///
/// Every file except `nodes.tsv` may only reference declared nodes; an
/// unknown id is a corrupt directory (e.g. a typo'd edge endpoint), not a
/// request to invent a phantom node with empty presence.
fn resolve_node(b: &GraphBuilder, file: &str, id: &str) -> Result<NodeId, GraphError> {
    b.node_id(id).ok_or_else(|| {
        GraphError::Format(format!(
            "{file}: unknown node id {id:?} (not declared in nodes.tsv)"
        ))
    })
}

/// Parses a presence cell, which must be exactly `0` or `1`.
fn presence_bit(cell: &Value, file: &str, who: &str) -> Result<bool, GraphError> {
    match cell.as_int() {
        Some(0) => Ok(false),
        Some(1) => Ok(true),
        _ => Err(GraphError::Format(format!(
            "{file}: presence cell for {who} must be 0 or 1, got {:?}",
            cell_to_string(cell)
        ))),
    }
}

fn cell_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string(),
    }
}

/// Loads a graph from a directory written by [`save_dir`].
///
/// # Errors
/// Returns an error on IO failure or malformed/inconsistent files.
pub fn load_dir(dir: &Path) -> Result<TemporalGraph, GraphError> {
    let _span = tempo_instrument::global().histogram("io.load_ns").span();
    let time = read_file(&dir.join("time.tsv"))?;
    let labels: Vec<String> = time.iter_rows().map(|r| cell_to_string(&r[0])).collect();
    let domain = TimeDomain::new(labels.clone())?;
    let nt = domain.len();

    let schema_frame = read_file(&dir.join("schema.tsv"))?;
    let mut schema = AttributeSchema::new();
    for row in schema_frame.iter_rows() {
        let name = cell_to_string(&row[0]);
        let kind = cell_to_string(&row[1]);
        let temporality = match kind.as_str() {
            "static" => Temporality::Static,
            "time-varying" => Temporality::TimeVarying,
            other => {
                return Err(GraphError::Format(format!(
                    "unknown attribute kind {other:?} for {name:?}"
                )))
            }
        };
        schema.declare(&name, temporality)?;
    }

    let mut b = GraphBuilder::new(domain, schema);

    let nodes = read_file(&dir.join("nodes.tsv"))?;
    if nodes.ncols() != nt + 1 {
        return Err(GraphError::Format(format!(
            "nodes.tsv has {} columns, expected {}",
            nodes.ncols(),
            nt + 1
        )));
    }
    for row in nodes.iter_rows() {
        let id = cell_to_string(&row[0]);
        let n = b.get_or_add_node(&id);
        for (t, cell) in row[1..].iter().enumerate() {
            if presence_bit(cell, "nodes.tsv", &id)? {
                b.set_presence(n, TimePoint(t as u32))?;
            }
        }
    }

    let stat = read_file(&dir.join("static.tsv"))?;
    let n_static = b.schema().static_ids().len();
    if stat.ncols() != n_static + 1 {
        return Err(GraphError::Format(format!(
            "static.tsv has {} columns, expected {}",
            stat.ncols(),
            n_static + 1
        )));
    }
    let static_names: Vec<String> = stat.columns()[1..].to_vec();
    for row in stat.iter_rows() {
        let n = resolve_node(&b, "static.tsv", &cell_to_string(&row[0]))?;
        for (i, name) in static_names.iter().enumerate() {
            let attr = b.schema().id(name)?;
            let cell = &row[i + 1];
            let value = match cell {
                Value::Null => Value::Null,
                Value::Int(v) => Value::Int(*v),
                other => b.intern_category(attr, &cell_to_string(other)),
            };
            b.set_static(n, attr, value)?;
        }
    }

    let tv_names: Vec<String> = b
        .schema()
        .time_varying_ids()
        .iter()
        .map(|&a| b.schema().def(a).name().to_owned())
        .collect();
    for name in tv_names {
        let attr = b.schema().id(&name)?;
        let af = read_file(&dir.join(format!("attr_{name}.tsv")))?;
        if af.ncols() != nt + 1 {
            return Err(GraphError::Format(format!(
                "attr_{name}.tsv has {} columns, expected {}",
                af.ncols(),
                nt + 1
            )));
        }
        let file = format!("attr_{name}.tsv");
        for row in af.iter_rows() {
            let n = resolve_node(&b, &file, &cell_to_string(&row[0]))?;
            for (t, cell) in row[1..].iter().enumerate() {
                let value = match cell {
                    Value::Null => continue,
                    Value::Int(v) => Value::Int(*v),
                    other => b.intern_category(attr, &cell_to_string(other)),
                };
                b.set_time_varying_unchecked(n, attr, TimePoint(t as u32), value)?;
            }
        }
    }

    let edges = read_file(&dir.join("edges.tsv"))?;
    if edges.ncols() != nt + 2 {
        return Err(GraphError::Format(format!(
            "edges.tsv has {} columns, expected {}",
            edges.ncols(),
            nt + 2
        )));
    }
    for row in edges.iter_rows() {
        let su = cell_to_string(&row[0]);
        let sv = cell_to_string(&row[1]);
        let u = resolve_node(&b, "edges.tsv", &su)?;
        let v = resolve_node(&b, "edges.tsv", &sv)?;
        let who = format!("{su}->{sv}");
        for (t, cell) in row[2..].iter().enumerate() {
            if presence_bit(cell, "edges.tsv", &who)? {
                b.add_edge_at_unchecked(u, v, TimePoint(t as u32))?;
            }
        }
    }

    let values_path = dir.join("edge_values.tsv");
    if values_path.exists() {
        let vf = read_file(&values_path)?;
        if vf.ncols() != nt + 2 {
            return Err(GraphError::Format(format!(
                "edge_values.tsv has {} columns, expected {}",
                vf.ncols(),
                nt + 2
            )));
        }
        for row in vf.iter_rows() {
            let u = resolve_node(&b, "edge_values.tsv", &cell_to_string(&row[0]))?;
            let v = resolve_node(&b, "edge_values.tsv", &cell_to_string(&row[1]))?;
            for (t, cell) in row[2..].iter().enumerate() {
                if !cell.is_null() {
                    b.set_edge_value(u, v, TimePoint(t as u32), cell.clone())?;
                }
            }
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tempo_graph_io_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_fig1() {
        let g = fig1();
        let dir = tmpdir("roundtrip");
        save_dir(&g, &dir).unwrap();
        let h = load_dir(&dir).unwrap();
        assert_eq!(h.n_nodes(), g.n_nodes());
        assert_eq!(h.n_edges(), g.n_edges());
        assert_eq!(h.domain().labels(), g.domain().labels());
        for n in g.node_ids() {
            let name = g.node_name(n);
            let hn = h.node_id(name).unwrap();
            assert_eq!(
                h.node_timestamp(hn).iter().collect::<Vec<_>>(),
                g.node_timestamp(n).iter().collect::<Vec<_>>(),
                "presence of {name}"
            );
        }
        // attribute values survive (categorical labels re-interned)
        let gender_g = g.schema().id("gender").unwrap();
        let gender_h = h.schema().id("gender").unwrap();
        for n in g.node_ids() {
            let name = g.node_name(n);
            let hn = h.node_id(name).unwrap();
            let vg = g.static_value(n, gender_g).unwrap();
            let vh = h.static_value(hn, gender_h).unwrap();
            assert_eq!(
                g.schema().def(gender_g).render(&vg),
                h.schema().def(gender_h).render(&vh),
                "gender of {name}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_errors() {
        let err = load_dir(Path::new("/nonexistent/graphtempo")).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn load_malformed_schema_errors() {
        let dir = tmpdir("badschema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("time.tsv"), "time\nt0\n").unwrap();
        std::fs::write(dir.join("schema.tsv"), "name\tkind\ngender\tweird\n").unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
