//! Attribute schema: static and time-varying node attributes.
//!
//! Definition 2.1 associates every node `u` at every time `t ∈ τu(u)` with a
//! k-dimensional attribute tuple. An attribute is *static* when its value
//! never changes (`gender`), and *time-varying* otherwise (`#publications`,
//! the monthly `rating`). The schema declares names and temporality; values
//! themselves are [`Value`]s, with categorical labels interned per attribute.

use crate::error::GraphError;
use tempo_columnar::{Interner, Value};

/// Identifier of an attribute within a schema (index into declaration order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's position in the schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether an attribute's value may change over time.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Temporality {
    /// Value fixed for the lifetime of the node.
    Static,
    /// Value may change at every time point.
    TimeVarying,
}

/// Declaration of one attribute.
#[derive(Clone, Debug)]
pub struct AttrDef {
    name: String,
    temporality: Temporality,
    /// Interner for categorical labels of this attribute; numeric attributes
    /// simply never intern anything.
    categories: Interner<String>,
}

impl AttrDef {
    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Static or time-varying.
    pub fn temporality(&self) -> Temporality {
        self.temporality
    }

    /// Number of categorical labels interned so far.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// Resolves a categorical code to its label.
    pub fn category_label(&self, code: u32) -> Option<&String> {
        self.categories.resolve(code)
    }

    /// Renders a value of this attribute for humans (resolving `Cat` codes).
    pub fn render(&self, v: &Value) -> String {
        match v {
            Value::Cat(c) => self
                .categories
                .resolve(*c)
                .cloned()
                .unwrap_or_else(|| format!("#{c}")),
            other => other.to_string(),
        }
    }
}

/// The ordered attribute declarations of a temporal graph.
#[derive(Clone, Debug, Default)]
pub struct AttributeSchema {
    attrs: Vec<AttrDef>,
}

impl AttributeSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        AttributeSchema { attrs: Vec::new() }
    }

    /// Declares an attribute, returning its id.
    ///
    /// # Errors
    /// Returns an error if the name is already declared.
    pub fn declare(&mut self, name: &str, temporality: Temporality) -> Result<AttrId, GraphError> {
        if self.attrs.iter().any(|a| a.name == name) {
            return Err(GraphError::DuplicateAttribute(name.to_owned()));
        }
        self.attrs.push(AttrDef {
            name: name.to_owned(),
            temporality,
            categories: Interner::new(),
        });
        Ok(AttrId((self.attrs.len() - 1) as u32))
    }

    /// Number of declared attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are declared.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Looks up an attribute id by name.
    ///
    /// # Errors
    /// Returns an error if the attribute is unknown.
    pub fn id(&self, name: &str) -> Result<AttrId, GraphError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
            .ok_or_else(|| GraphError::UnknownAttribute(name.to_owned()))
    }

    /// Borrows an attribute definition.
    ///
    /// # Panics
    /// Panics if the id is out of range (ids are only minted by `declare`).
    pub fn def(&self, id: AttrId) -> &AttrDef {
        &self.attrs[id.index()]
    }

    /// Interns a categorical label for the given attribute, returning its
    /// value.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn intern_category(&mut self, id: AttrId, label: &str) -> Value {
        Value::Cat(self.attrs[id.index()].categories.intern(label.to_owned()))
    }

    /// Looks up an existing categorical value without interning.
    pub fn category(&self, id: AttrId, label: &str) -> Option<Value> {
        self.attrs[id.index()]
            .categories
            .code(&label.to_owned())
            .map(Value::Cat)
    }

    /// Iterates `(id, def)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u32), d))
    }

    /// Ids of all static attributes, in declaration order.
    pub fn static_ids(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, d)| d.temporality() == Temporality::Static)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all time-varying attributes, in declaration order.
    pub fn time_varying_ids(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, d)| d.temporality() == Temporality::TimeVarying)
            .map(|(id, _)| id)
            .collect()
    }

    /// Position of a time-varying attribute among the time-varying ones
    /// (used to index per-attribute value matrices).
    pub fn time_varying_slot(&self, id: AttrId) -> Option<usize> {
        self.time_varying_ids().iter().position(|&i| i == id)
    }

    /// Position of a static attribute among the static ones (used to index
    /// the static table's columns).
    pub fn static_slot(&self, id: AttrId) -> Option<usize> {
        self.static_ids().iter().position(|&i| i == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut s = AttributeSchema::new();
        let g = s.declare("gender", Temporality::Static).unwrap();
        let p = s.declare("publications", Temporality::TimeVarying).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.id("gender").unwrap(), g);
        assert_eq!(s.id("publications").unwrap(), p);
        assert!(s.id("nope").is_err());
        assert!(matches!(
            s.declare("gender", Temporality::Static),
            Err(GraphError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn slots_partition_by_temporality() {
        let mut s = AttributeSchema::new();
        let g = s.declare("gender", Temporality::Static).unwrap();
        let r = s.declare("rating", Temporality::TimeVarying).unwrap();
        let a = s.declare("age", Temporality::Static).unwrap();
        assert_eq!(s.static_ids(), vec![g, a]);
        assert_eq!(s.time_varying_ids(), vec![r]);
        assert_eq!(s.static_slot(a), Some(1));
        assert_eq!(s.static_slot(r), None);
        assert_eq!(s.time_varying_slot(r), Some(0));
        assert_eq!(s.time_varying_slot(g), None);
    }

    #[test]
    fn categorical_interning_is_per_attribute() {
        let mut s = AttributeSchema::new();
        let g = s.declare("gender", Temporality::Static).unwrap();
        let o = s.declare("occupation", Temporality::Static).unwrap();
        let m = s.intern_category(g, "m");
        let f = s.intern_category(g, "f");
        let lawyer = s.intern_category(o, "lawyer");
        assert_eq!(m, Value::Cat(0));
        assert_eq!(f, Value::Cat(1));
        // codes restart per attribute
        assert_eq!(lawyer, Value::Cat(0));
        assert_eq!(s.intern_category(g, "m"), m);
        assert_eq!(s.category(g, "f"), Some(f.clone()));
        assert_eq!(s.category(g, "x"), None);
        assert_eq!(s.def(g).render(&f), "f");
        assert_eq!(s.def(g).category_count(), 2);
    }

    #[test]
    fn render_falls_back_for_unknown_code() {
        let mut s = AttributeSchema::new();
        let g = s.declare("gender", Temporality::Static).unwrap();
        assert_eq!(s.def(g).render(&Value::Cat(9)), "#9");
        assert_eq!(s.def(g).render(&Value::Int(4)), "4");
    }
}
