//! # tempo-graph
//!
//! The temporal attributed graph model of *GraphTempo* (EDBT 2023,
//! Definition 2.1): a graph `G(V, E, τu, τe, A)` over a finite ordered
//! [`TimeDomain`], where every node and edge carries a timestamp — a set of
//! time points represented as a [`TimeSet`] — and nodes carry static and
//! time-varying attributes declared in an [`AttributeSchema`].
//!
//! Storage follows §4 of the paper: binary presence matrices for nodes and
//! edges, a static attribute table, and one value matrix per time-varying
//! attribute (all built on `tempo-columnar`).
//!
//! ```
//! use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint};
//! use tempo_columnar::Value;
//!
//! let domain = TimeDomain::new(vec!["2020", "2021"]).unwrap();
//! let mut schema = AttributeSchema::new();
//! let gender = schema.declare("gender", Temporality::Static).unwrap();
//!
//! let mut b = GraphBuilder::new(domain, schema);
//! let alice = b.add_node("alice").unwrap();
//! let bob = b.add_node("bob").unwrap();
//! let f = b.intern_category(gender, "f");
//! b.set_static(alice, gender, f).unwrap();
//! b.add_edge_at(alice, bob, TimePoint(0)).unwrap();
//!
//! let g = b.build().unwrap();
//! assert_eq!(g.n_nodes(), 2);
//! assert!(g.node_alive_at(alice, TimePoint(0)));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod attrs;
mod builder;
mod error;
pub mod fixtures;
mod graph;
pub mod io;
pub mod metrics;
pub mod seams;
mod shards;
mod stats;
mod time;
mod versions;

pub use attrs::{AttrDef, AttrId, AttributeSchema, Temporality};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeId, NodeId, TemporalGraph};
pub use shards::PresenceShards;
pub use stats::{attr_domain_size_at, GraphStats};
pub use time::{require_non_empty, Interval, TimeDomain, TimePoint, TimeSet};
pub use versions::{GraphVersions, TimepointPatch};
