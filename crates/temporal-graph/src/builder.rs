//! Validated construction of temporal attributed graphs.

use crate::attrs::{AttrId, AttributeSchema};
use crate::error::GraphError;
use crate::graph::{NodeId, TemporalGraph};
use crate::time::{TimeDomain, TimePoint, TimeSet};
use std::collections::HashMap;
use tempo_columnar::{BitMatrix, Interner, Value, ValueMatrix};

/// Incrementally builds a [`TemporalGraph`].
///
/// Convenience setters keep the model invariants as you go (adding an edge
/// at `t` marks both endpoints present at `t`; setting a time-varying value
/// marks the node present); the `_unchecked` variants skip that so tests and
/// loaders can surface validation errors from [`GraphBuilder::build`].
#[derive(Debug)]
pub struct GraphBuilder {
    domain: TimeDomain,
    schema: AttributeSchema,
    node_names: Interner<String>,
    node_presence: BitMatrix,
    static_table: ValueMatrix,
    tv_tables: Vec<ValueMatrix>,
    edges: Vec<(NodeId, NodeId)>,
    edge_index: HashMap<(u32, u32), u32>,
    edge_presence: BitMatrix,
    edge_values: ValueMatrix,
    edge_values_used: bool,
}

impl GraphBuilder {
    /// Creates a builder over a time domain and attribute schema.
    pub fn new(domain: TimeDomain, schema: AttributeSchema) -> Self {
        let nt = domain.len();
        let n_tv = schema.time_varying_ids().len();
        let n_static = schema.static_ids().len();
        GraphBuilder {
            domain,
            schema,
            node_names: Interner::new(),
            node_presence: BitMatrix::new(nt),
            static_table: ValueMatrix::new(n_static),
            tv_tables: (0..n_tv).map(|_| ValueMatrix::new(nt)).collect(),
            edges: Vec::new(),
            edge_index: HashMap::new(),
            edge_presence: BitMatrix::new(nt),
            edge_values: ValueMatrix::new(nt),
            edge_values_used: false,
        }
    }

    /// Resumes construction from an existing graph with `new_labels`
    /// appended to its time domain — the incremental-update path for an
    /// evolving graph: all existing presence, attributes and edges carry
    /// over, and the new time points start empty.
    ///
    /// # Errors
    /// Returns an error if a new label duplicates an existing one.
    pub fn from_graph(g: TemporalGraph, new_labels: &[&str]) -> Result<Self, GraphError> {
        let mut labels: Vec<String> = g.domain().labels().to_vec();
        labels.extend(new_labels.iter().map(|s| (*s).to_owned()));
        let domain = TimeDomain::new(labels)?;
        let nt = domain.len();
        Ok(GraphBuilder {
            domain,
            node_presence: g.node_presence.widen(nt),
            edge_presence: g.edge_presence.widen(nt),
            tv_tables: g.tv_tables.iter().map(|t| t.widen(nt)).collect(),
            schema: g.schema,
            node_names: g.node_names,
            static_table: g.static_table,
            edge_values: match &g.edge_values {
                Some(ev) => ev.widen(nt),
                None => {
                    let mut m = ValueMatrix::new(nt);
                    for _ in 0..g.edges.len() {
                        m.push_null_row();
                    }
                    m
                }
            },
            edge_values_used: g.edge_values.is_some(),
            edges: g.edges,
            edge_index: g.edge_index,
        })
    }

    /// The time domain being built against.
    pub fn domain(&self) -> &TimeDomain {
        &self.domain
    }

    /// The attribute schema (immutable view).
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// Interns a categorical label for an attribute, returning its value.
    pub fn intern_category(&mut self, attr: AttrId, label: &str) -> Value {
        self.schema.intern_category(attr, label)
    }

    /// Number of nodes registered so far.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges registered so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Registers a new node.
    ///
    /// # Errors
    /// Returns an error if the name is already registered.
    pub fn add_node(&mut self, name: &str) -> Result<NodeId, GraphError> {
        if self.node_names.code(&name.to_owned()).is_some() {
            return Err(GraphError::DuplicateNode(name.to_owned()));
        }
        Ok(self.register_node(name))
    }

    /// Returns the node id for an already-registered `name`, if any.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.code(&name.to_owned()).map(NodeId)
    }

    /// Returns the node id for `name`, registering it if needed.
    pub fn get_or_add_node(&mut self, name: &str) -> NodeId {
        match self.node_names.code(&name.to_owned()) {
            Some(c) => NodeId(c),
            None => self.register_node(name),
        }
    }

    fn register_node(&mut self, name: &str) -> NodeId {
        let code = self.node_names.intern(name.to_owned());
        self.node_presence.push_empty_row();
        self.static_table
            .push_row(vec![Value::Null; self.static_table.ncols()]);
        for tbl in &mut self.tv_tables {
            tbl.push_null_row();
        }
        NodeId(code)
    }

    fn check_time(&self, t: TimePoint) -> Result<(), GraphError> {
        if t.index() >= self.domain.len() {
            return Err(GraphError::UnknownTimePoint(format!("{t:?}")));
        }
        Ok(())
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() >= self.node_names.len() {
            return Err(GraphError::UnknownNode(format!("{n:?}")));
        }
        Ok(())
    }

    /// Marks node `n` present at time `t`.
    ///
    /// # Errors
    /// Returns an error for an unknown node or time point.
    pub fn set_presence(&mut self, n: NodeId, t: TimePoint) -> Result<(), GraphError> {
        self.check_node(n)?;
        self.check_time(t)?;
        self.node_presence.set(n.index(), t.index(), true);
        Ok(())
    }

    /// Marks node `n` present at every point of `times`.
    ///
    /// # Errors
    /// Returns an error for an unknown node or a domain-size mismatch.
    pub fn set_presence_set(&mut self, n: NodeId, times: &TimeSet) -> Result<(), GraphError> {
        self.check_node(n)?;
        if times.domain_len() != self.domain.len() {
            return Err(GraphError::UnknownTimePoint(format!(
                "time set over domain of {} in graph of {}",
                times.domain_len(),
                self.domain.len()
            )));
        }
        for t in times.iter() {
            self.node_presence.set(n.index(), t.index(), true);
        }
        Ok(())
    }

    /// Sets the value of a static attribute for a node.
    ///
    /// # Errors
    /// Returns an error for an unknown node or a non-static attribute.
    pub fn set_static(&mut self, n: NodeId, attr: AttrId, value: Value) -> Result<(), GraphError> {
        self.check_node(n)?;
        let slot =
            self.schema
                .static_slot(attr)
                .ok_or_else(|| GraphError::AttributeKindMismatch {
                    name: self.schema.def(attr).name().to_owned(),
                    expected: "static",
                })?;
        self.static_table.set(n.index(), slot, value);
        Ok(())
    }

    /// Sets a time-varying attribute value and marks the node present at `t`
    /// (a value implies existence per Definition 2.1).
    ///
    /// # Errors
    /// Returns an error for an unknown node/time or non-time-varying attribute.
    pub fn set_time_varying(
        &mut self,
        n: NodeId,
        attr: AttrId,
        t: TimePoint,
        value: Value,
    ) -> Result<(), GraphError> {
        self.set_time_varying_unchecked(n, attr, t, value)?;
        self.node_presence.set(n.index(), t.index(), true);
        Ok(())
    }

    /// Sets a time-varying attribute value without touching presence.
    ///
    /// # Errors
    /// Returns an error for an unknown node/time or non-time-varying attribute.
    pub fn set_time_varying_unchecked(
        &mut self,
        n: NodeId,
        attr: AttrId,
        t: TimePoint,
        value: Value,
    ) -> Result<(), GraphError> {
        self.check_node(n)?;
        self.check_time(t)?;
        let slot = self.schema.time_varying_slot(attr).ok_or_else(|| {
            GraphError::AttributeKindMismatch {
                name: self.schema.def(attr).name().to_owned(),
                expected: "time-varying",
            }
        })?;
        self.tv_tables[slot].set(n.index(), t.index(), value);
        Ok(())
    }

    fn edge_row(&mut self, u: NodeId, v: NodeId) -> u32 {
        match self.edge_index.get(&(u.0, v.0)) {
            Some(&i) => i,
            None => {
                let i = self.edges.len() as u32;
                self.edges.push((u, v));
                self.edge_presence.push_empty_row();
                self.edge_values.push_null_row();
                self.edge_index.insert((u.0, v.0), i);
                i
            }
        }
    }

    /// Records that edge `(u, v)` exists at time `t`, marking both
    /// endpoints present at `t` as well.
    ///
    /// # Errors
    /// Returns an error for unknown nodes or time points.
    pub fn add_edge_at(&mut self, u: NodeId, v: NodeId, t: TimePoint) -> Result<(), GraphError> {
        self.add_edge_at_unchecked(u, v, t)?;
        self.node_presence.set(u.index(), t.index(), true);
        self.node_presence.set(v.index(), t.index(), true);
        Ok(())
    }

    /// Records edge existence without fixing endpoint presence (violations
    /// surface in [`GraphBuilder::build`]).
    ///
    /// # Errors
    /// Returns an error for unknown nodes or time points.
    pub fn add_edge_at_unchecked(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: TimePoint,
    ) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        self.check_time(t)?;
        let row = self.edge_row(u, v);
        self.edge_presence.set(row as usize, t.index(), true);
        Ok(())
    }

    /// Records that edge `(u, v)` exists at every point of `times`.
    ///
    /// # Errors
    /// Returns an error for unknown nodes or a domain-size mismatch.
    pub fn add_edge_span(
        &mut self,
        u: NodeId,
        v: NodeId,
        times: &TimeSet,
    ) -> Result<(), GraphError> {
        for t in times.iter() {
            self.add_edge_at(u, v, t)?;
        }
        Ok(())
    }

    /// Records a numeric value for edge `(u, v)` at time `t` (e.g. papers
    /// co-authored that year), marking the edge — and both endpoints —
    /// present at `t`.
    ///
    /// # Errors
    /// Returns an error for unknown nodes or time points.
    pub fn set_edge_value(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: TimePoint,
        value: Value,
    ) -> Result<(), GraphError> {
        self.add_edge_at(u, v, t)?;
        let row = self.edge_index[&(u.0, v.0)] as usize;
        self.edge_values.set(row, t.index(), value);
        self.edge_values_used = true;
        Ok(())
    }

    /// Finishes construction, validating all model invariants.
    ///
    /// # Errors
    /// Returns the first violated invariant (see
    /// [`TemporalGraph::validate`]).
    pub fn build(self) -> Result<TemporalGraph, GraphError> {
        TemporalGraph::from_parts_with_edge_values(
            self.domain,
            self.schema,
            self.node_names,
            self.node_presence,
            self.edges,
            self.edge_presence,
            self.static_table,
            self.tv_tables,
            if self.edge_values_used {
                Some(self.edge_values)
            } else {
                None
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Temporality;

    fn schema() -> AttributeSchema {
        let mut s = AttributeSchema::new();
        s.declare("gender", Temporality::Static).unwrap();
        s.declare("pubs", Temporality::TimeVarying).unwrap();
        s
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        b.add_node("u").unwrap();
        assert!(matches!(b.add_node("u"), Err(GraphError::DuplicateNode(_))));
        assert_eq!(b.get_or_add_node("u"), NodeId(0));
        assert_eq!(b.get_or_add_node("v"), NodeId(1));
        assert_eq!(b.n_nodes(), 2);
    }

    #[test]
    fn edge_implies_presence() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.add_edge_at(u, v, TimePoint(1)).unwrap();
        let g = b.build().unwrap();
        assert!(g.node_alive_at(u, TimePoint(1)));
        assert!(g.node_alive_at(v, TimePoint(1)));
        assert!(!g.node_alive_at(u, TimePoint(0)));
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn repeated_edge_merges_into_one_row() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(3), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.add_edge_at(u, v, TimePoint(0)).unwrap();
        b.add_edge_at(u, v, TimePoint(2)).unwrap();
        // reverse direction is a distinct edge
        b.add_edge_at(v, u, TimePoint(2)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.n_edges(), 2);
        let e = g.edge_between(u, v).unwrap();
        assert_eq!(
            g.edge_timestamp(e).iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn tv_value_sets_presence() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let pubs = b.schema().id("pubs").unwrap();
        b.set_time_varying(u, pubs, TimePoint(0), Value::Int(5))
            .unwrap();
        let g = b.build().unwrap();
        assert!(g.node_alive_at(u, TimePoint(0)));
        assert_eq!(g.attr_value(u, pubs, TimePoint(0)), Value::Int(5));
    }

    #[test]
    fn kind_mismatch_errors() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let gender = b.schema().id("gender").unwrap();
        let pubs = b.schema().id("pubs").unwrap();
        assert!(matches!(
            b.set_static(u, pubs, Value::Int(1)),
            Err(GraphError::AttributeKindMismatch { .. })
        ));
        assert!(matches!(
            b.set_time_varying(u, gender, TimePoint(0), Value::Int(1)),
            Err(GraphError::AttributeKindMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_time_and_node() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        assert!(b.set_presence(u, TimePoint(9)).is_err());
        assert!(b.set_presence(NodeId(7), TimePoint(0)).is_err());
        let other = TimeSet::empty(5);
        assert!(b.set_presence_set(u, &other).is_err());
    }

    #[test]
    fn edge_values_roundtrip_through_builder() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.set_edge_value(u, v, TimePoint(0), Value::Int(3)).unwrap();
        b.add_edge_at(u, v, TimePoint(1)).unwrap(); // present, no value
        let g = b.build().unwrap();
        assert!(g.has_edge_values());
        let e = g.edge_between(u, v).unwrap();
        assert_eq!(g.edge_value(e, TimePoint(0)), Value::Int(3));
        assert_eq!(g.edge_value(e, TimePoint(1)), Value::Null);
    }

    #[test]
    fn graphs_without_edge_values_report_none() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.add_edge_at(u, v, TimePoint(0)).unwrap();
        let g = b.build().unwrap();
        assert!(!g.has_edge_values());
        let e = g.edge_between(u, v).unwrap();
        assert_eq!(g.edge_value(e, TimePoint(0)), Value::Null);
    }

    #[test]
    fn from_graph_preserves_edge_values() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.set_edge_value(u, v, TimePoint(1), Value::Int(7)).unwrap();
        let g = b.build().unwrap();
        let mut b2 = GraphBuilder::from_graph(g, &["t2"]).unwrap();
        b2.set_edge_value(u, v, TimePoint(2), Value::Int(9))
            .unwrap();
        let g2 = b2.build().unwrap();
        let e = g2.edge_between(u, v).unwrap();
        assert_eq!(g2.edge_value(e, TimePoint(1)), Value::Int(7));
        assert_eq!(g2.edge_value(e, TimePoint(2)), Value::Int(9));
    }

    #[test]
    fn from_graph_extends_domain_incrementally() {
        // build a 2-point graph, then append a third snapshot
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.add_edge_at(u, v, TimePoint(0)).unwrap();
        let pubs = b.schema().id("pubs").unwrap();
        b.set_time_varying(u, pubs, TimePoint(1), Value::Int(2))
            .unwrap();
        let g = b.build().unwrap();

        let mut b2 = GraphBuilder::from_graph(g, &["t2"]).unwrap();
        assert_eq!(b2.domain().len(), 3);
        // old data survives
        assert_eq!(b2.n_nodes(), 2);
        assert_eq!(b2.n_edges(), 1);
        // append the new snapshot
        let w = b2.add_node("w").unwrap();
        b2.add_edge_at(u, w, TimePoint(2)).unwrap();
        b2.set_time_varying(u, pubs, TimePoint(2), Value::Int(5))
            .unwrap();
        let g2 = b2.build().unwrap();
        assert_eq!(g2.domain().labels(), &["t0", "t1", "t2"]);
        assert!(g2.edge_alive_at(g2.edge_between(u, v).unwrap(), TimePoint(0)));
        assert!(g2.node_alive_at(w, TimePoint(2)));
        assert_eq!(g2.attr_value(u, pubs, TimePoint(1)), Value::Int(2));
        assert_eq!(g2.attr_value(u, pubs, TimePoint(2)), Value::Int(5));
    }

    #[test]
    fn from_graph_rejects_duplicate_label() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema());
        let u = b.add_node("u").unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            GraphBuilder::from_graph(g, &["t1"]),
            Err(GraphError::DuplicateTimeLabel(_))
        ));
    }

    #[test]
    fn presence_set_and_edge_span() {
        let mut b = GraphBuilder::new(TimeDomain::indexed(4), schema());
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        b.set_presence_set(u, &TimeSet::from_indices(4, [0, 2]))
            .unwrap();
        b.add_edge_span(v, u, &TimeSet::from_indices(4, [2, 3]))
            .unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_timestamp(u).len(), 3); // {0,2} ∪ {3} via edge span
        let e = g.edge_between(v, u).unwrap();
        assert_eq!(g.edge_timestamp(e).len(), 2);
    }
}
