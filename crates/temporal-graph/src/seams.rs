//! Cache-seam registry: the closed list of functions allowed to mutate
//! presence matrices without calling `invalidate_index_caches()`.
//!
//! The workspace `cache-seam` lint (`tempo-lint`) flags any function in
//! this crate that touches `node_presence`/`edge_presence` mutators
//! (`set`, `push_empty_row`, `push_col`, `widen`) without invalidating the
//! derived index caches — a stale cache silently corrupts every downstream
//! aggregation. Construction-time mutators are exempt because no caches
//! exist yet (they are built lazily on first query), and the versioned
//! append path carries caches forward explicitly. The lint reads this file
//! as data: it extracts the string literals below, so every exempt function
//! must be named here *and* the list stays reviewable in one place.

/// Functions exempt from the `cache-seam` lint, with why each is safe.
///
/// Builder-phase mutators (no caches can exist before the first query):
/// - `from_graph`, `register_node`, `set_presence`, `set_presence_set`,
///   `set_time_varying`, `edge_row`, `add_edge_at`,
///   `add_edge_at_unchecked`, `get_or_add`
///
/// Versioned append (invalidation handled structurally):
/// - `append_timepoint` — widens presence under the snapshot
///   copy-on-write protocol, which rebuilds or forwards caches itself.
pub const CACHE_SEAM_FNS: &[&str] = &[
    "from_graph",
    "register_node",
    "set_presence",
    "set_presence_set",
    "set_time_varying",
    "edge_row",
    "add_edge_at",
    "add_edge_at_unchecked",
    "get_or_add",
    "append_timepoint",
];

#[cfg(test)]
mod tests {
    use super::CACHE_SEAM_FNS;

    #[test]
    fn seam_list_is_sorted_free_of_duplicates() {
        let mut seen = std::collections::BTreeSet::new();
        for name in CACHE_SEAM_FNS {
            assert!(seen.insert(name), "duplicate seam entry {name}");
            assert!(!name.is_empty());
        }
    }
}
