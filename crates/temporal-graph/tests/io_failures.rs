//! Failure injection for the on-disk graph format: every malformed input
//! must produce a descriptive error, never a panic or a silently-wrong
//! graph.

use std::path::{Path, PathBuf};
use tempo_graph::io::{load_dir, save_dir};
use tempo_graph::{fixtures::fig1, GraphError};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tempo_io_fail_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, file: &str, content: &str) {
    std::fs::write(dir.join(file), content).unwrap();
}

/// A minimal consistent directory the failure cases then corrupt.
fn valid_skeleton(dir: &Path) {
    write(dir, "time.tsv", "time\nt0\nt1\n");
    write(
        dir,
        "schema.tsv",
        "name\tkind\ngender\tstatic\npubs\ttime-varying\n",
    );
    write(dir, "nodes.tsv", "id\tt0\tt1\nu\t1\t1\nv\t1\t0\n");
    write(dir, "static.tsv", "id\tgender\nu\tm\nv\tf\n");
    write(dir, "attr_pubs.tsv", "id\tt0\tt1\nu\t2\t1\nv\t3\t-\n");
    write(dir, "edges.tsv", "src\tdst\tt0\tt1\nu\tv\t1\t0\n");
}

#[test]
fn valid_skeleton_loads() {
    let dir = scratch("valid");
    valid_skeleton(&dir);
    let g = load_dir(&dir).unwrap();
    assert_eq!(g.n_nodes(), 2);
    assert_eq!(g.n_edges(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_time_labels_rejected() {
    let dir = scratch("duptime");
    valid_skeleton(&dir);
    write(&dir, "time.tsv", "time\nt0\nt0\n");
    assert!(matches!(
        load_dir(&dir),
        Err(GraphError::DuplicateTimeLabel(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn edge_at_time_without_endpoint_rejected() {
    let dir = scratch("badedge");
    valid_skeleton(&dir);
    // v does not exist at t1, but the edge claims to
    write(&dir, "edges.tsv", "src\tdst\tt0\tt1\nu\tv\t1\t1\n");
    assert!(matches!(
        load_dir(&dir),
        Err(GraphError::EdgeWithoutEndpoint { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn attribute_value_for_absent_node_rejected() {
    let dir = scratch("badattr");
    valid_skeleton(&dir);
    // v absent at t1 but has a pubs value there
    write(&dir, "attr_pubs.tsv", "id\tt0\tt1\nu\t2\t1\nv\t3\t9\n");
    assert!(matches!(
        load_dir(&dir),
        Err(GraphError::AttributePresenceMismatch { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wrong_column_counts_rejected() {
    for (file, content) in [
        ("nodes.tsv", "id\tt0\nu\t1\n"),
        ("edges.tsv", "src\tdst\tt0\nu\tv\t1\n"),
        ("attr_pubs.tsv", "id\tt0\nu\t2\n"),
    ] {
        let dir = scratch("cols");
        valid_skeleton(&dir);
        write(&dir, file, content);
        assert!(
            matches!(load_dir(&dir), Err(GraphError::Format(_))),
            "expected Format error for truncated {file}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn missing_attribute_file_rejected() {
    let dir = scratch("missingattr");
    valid_skeleton(&dir);
    std::fs::remove_file(dir.join("attr_pubs.tsv")).unwrap();
    assert!(matches!(load_dir(&dir), Err(GraphError::Format(_))));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_attribute_kind_rejected() {
    let dir = scratch("badkind");
    valid_skeleton(&dir);
    write(&dir, "schema.tsv", "name\tkind\ngender\tsometimes\n");
    assert!(matches!(load_dir(&dir), Err(GraphError::Format(_))));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ragged_rows_rejected() {
    let dir = scratch("ragged");
    valid_skeleton(&dir);
    write(&dir, "nodes.tsv", "id\tt0\tt1\nu\t1\n");
    let err = load_dir(&dir).unwrap_err();
    assert!(matches!(err, GraphError::Columnar(_)), "got {err:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_node_id_in_each_file_kind_rejected() {
    // Before the fix, an undeclared id in any of these files silently
    // materialized a phantom node with empty presence and the load
    // *succeeded*; it must instead fail naming the file and the id.
    for (file, content) in [
        ("static.tsv", "id\tgender\nu\tm\nv\tf\nghost\tm\n"),
        ("attr_pubs.tsv", "id\tt0\tt1\nu\t2\t1\nghost\t5\t-\n"),
        ("edges.tsv", "src\tdst\tt0\tt1\nu\tghost\t1\t0\n"),
        ("edge_values.tsv", "src\tdst\tt0\tt1\nghost\tv\t7\t-\n"),
    ] {
        let dir = scratch("ghost");
        valid_skeleton(&dir);
        write(&dir, file, content);
        match load_dir(&dir) {
            Err(GraphError::Format(msg)) => {
                assert!(msg.contains(file), "{file}: message {msg:?} names the file");
                assert!(
                    msg.contains("ghost"),
                    "{file}: message {msg:?} names the id"
                );
            }
            other => panic!("{file}: expected Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn malformed_presence_cells_rejected() {
    // 2, -1, and junk strings used to be silently treated as "absent".
    for (file, content) in [
        ("nodes.tsv", "id\tt0\tt1\nu\t1\t2\nv\t1\t0\n"),
        ("nodes.tsv", "id\tt0\tt1\nu\t1\t-1\nv\t1\t0\n"),
        ("nodes.tsv", "id\tt0\tt1\nu\t1\tyes\nv\t1\t0\n"),
        ("nodes.tsv", "id\tt0\tt1\nu\t1\t-\nv\t1\t0\n"),
        ("edges.tsv", "src\tdst\tt0\tt1\nu\tv\t3\t0\n"),
        ("edges.tsv", "src\tdst\tt0\tt1\nu\tv\tx\t0\n"),
    ] {
        let dir = scratch("badbit");
        valid_skeleton(&dir);
        write(&dir, file, content);
        match load_dir(&dir) {
            Err(GraphError::Format(msg)) => {
                assert!(
                    msg.contains("presence") && msg.contains(file),
                    "{file}: unexpected message {msg:?}"
                );
            }
            other => panic!("{file} ({content:?}): expected Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn static_wrong_column_count_rejected() {
    // static.tsv lacked the column-count check the other files have.
    for content in ["id\nu\nv\n", "id\tgender\textra\nu\tm\t1\nv\tf\t2\n"] {
        let dir = scratch("statcols");
        valid_skeleton(&dir);
        write(&dir, "static.tsv", content);
        match load_dir(&dir) {
            Err(GraphError::Format(msg)) => {
                assert!(msg.contains("static.tsv"), "unexpected message {msg:?}");
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn edge_values_wrong_column_count_rejected() {
    let dir = scratch("evcols");
    valid_skeleton(&dir);
    write(&dir, "edge_values.tsv", "src\tdst\tt0\nu\tv\t7\n");
    assert!(matches!(load_dir(&dir), Err(GraphError::Format(_))));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_then_corrupt_then_reload() {
    // round-trip a real fixture, then corrupt one presence bit so an edge
    // dangles and confirm validation catches it
    let dir = scratch("corrupt");
    save_dir(&fig1(), &dir).unwrap();
    let nodes = std::fs::read_to_string(dir.join("nodes.tsv")).unwrap();
    // u2 exists everywhere and anchors every edge; remove its t0 presence
    let corrupted = nodes.replace("u2\t1\t1\t1", "u2\t0\t1\t1");
    assert_ne!(nodes, corrupted, "fixture layout changed");
    write(&dir, "nodes.tsv", &corrupted);
    assert!(load_dir(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
