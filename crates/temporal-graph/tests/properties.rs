//! Property-based tests of the time algebra and graph construction.

use proptest::prelude::*;
use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint, TimeSet};

fn timeset_pair(n: usize) -> impl Strategy<Value = (TimeSet, TimeSet)> {
    (
        proptest::collection::vec(any::<bool>(), n),
        proptest::collection::vec(any::<bool>(), n),
    )
        .prop_map(move |(a, b)| {
            (
                TimeSet::from_indices(n, a.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i)),
                TimeSet::from_indices(n, b.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i)),
            )
        })
}

proptest! {
    #[test]
    fn set_algebra((a, b) in timeset_pair(24)) {
        // commutativity
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // absorption: a ∩ (a ∪ b) = a
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // inclusion-exclusion on sizes
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
        // subset relations
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn interval_decomposition_roundtrips(bits in proptest::collection::vec(any::<bool>(), 1..24)) {
        let n = bits.len();
        let s = TimeSet::from_indices(
            n,
            bits.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i),
        );
        // rebuilding from maximal intervals gives back the set
        let mut rebuilt = TimeSet::empty(n);
        for iv in s.intervals() {
            rebuilt = rebuilt.union(&iv.to_set(n));
        }
        prop_assert_eq!(&rebuilt, &s);
        // intervals are maximal: consecutive intervals are separated by a gap
        let ivs = s.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].end.index() + 1 < w[1].start.index());
        }
        // min/max agree with interval ends
        if let (Some(first), Some(last)) = (ivs.first(), ivs.last()) {
            prop_assert_eq!(s.min(), Some(first.start));
            prop_assert_eq!(s.max(), Some(last.end));
        } else {
            prop_assert!(s.is_empty());
        }
    }

    #[test]
    fn builder_presence_is_union_of_sources(
        presence in proptest::collection::vec(0usize..6, 0..10),
        edges in proptest::collection::vec((0usize..4, 0usize..4, 0usize..6), 0..10),
    ) {
        let mut schema = AttributeSchema::new();
        schema.declare("kind", Temporality::Static).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(6), schema);
        let nodes: Vec<_> = (0..4).map(|i| b.add_node(&format!("n{i}")).unwrap()).collect();
        let mut expected = [[false; 6]; 4];
        for (i, &t) in presence.iter().enumerate() {
            let n = i % 4;
            b.set_presence(nodes[n], TimePoint(t as u32)).unwrap();
            expected[n][t] = true;
        }
        for &(u, v, t) in &edges {
            if u == v {
                continue;
            }
            b.add_edge_at(nodes[u], nodes[v], TimePoint(t as u32)).unwrap();
            expected[u][t] = true;
            expected[v][t] = true;
        }
        let g = b.build().unwrap();
        for (i, &n) in nodes.iter().enumerate() {
            for (t, &want) in expected[i].iter().enumerate() {
                prop_assert_eq!(
                    g.node_alive_at(n, TimePoint(t as u32)),
                    want,
                    "node {} at t{}", i, t
                );
            }
        }
        prop_assert!(g.validate().is_ok());
    }
}
