//! Property-based tests of the time algebra and graph construction.

use proptest::prelude::*;
use tempo_columnar::Value;
use tempo_graph::io::{load_dir, save_dir};
use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint, TimeSet};

/// A scratch directory unique to this process and invocation.
fn roundtrip_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tempo_graph_prop_rt_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn timeset_pair(n: usize) -> impl Strategy<Value = (TimeSet, TimeSet)> {
    (
        proptest::collection::vec(any::<bool>(), n),
        proptest::collection::vec(any::<bool>(), n),
    )
        .prop_map(move |(a, b)| {
            (
                TimeSet::from_indices(n, a.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i)),
                TimeSet::from_indices(n, b.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i)),
            )
        })
}

proptest! {
    #[test]
    fn set_algebra((a, b) in timeset_pair(24)) {
        // commutativity
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // absorption: a ∩ (a ∪ b) = a
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // inclusion-exclusion on sizes
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
        // subset relations
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn interval_decomposition_roundtrips(bits in proptest::collection::vec(any::<bool>(), 1..24)) {
        let n = bits.len();
        let s = TimeSet::from_indices(
            n,
            bits.iter().enumerate().filter(|(_, &x)| x).map(|(i, _)| i),
        );
        // rebuilding from maximal intervals gives back the set
        let mut rebuilt = TimeSet::empty(n);
        for iv in s.intervals() {
            rebuilt = rebuilt.union(&iv.to_set(n));
        }
        prop_assert_eq!(&rebuilt, &s);
        // intervals are maximal: consecutive intervals are separated by a gap
        let ivs = s.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].end.index() + 1 < w[1].start.index());
        }
        // min/max agree with interval ends
        if let (Some(first), Some(last)) = (ivs.first(), ivs.last()) {
            prop_assert_eq!(s.min(), Some(first.start));
            prop_assert_eq!(s.max(), Some(last.end));
        } else {
            prop_assert!(s.is_empty());
        }
    }

    #[test]
    fn builder_presence_is_union_of_sources(
        presence in proptest::collection::vec(0usize..6, 0..10),
        edges in proptest::collection::vec((0usize..4, 0usize..4, 0usize..6), 0..10),
    ) {
        let mut schema = AttributeSchema::new();
        schema.declare("kind", Temporality::Static).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(6), schema);
        let nodes: Vec<_> = (0..4).map(|i| b.add_node(&format!("n{i}")).unwrap()).collect();
        let mut expected = [[false; 6]; 4];
        for (i, &t) in presence.iter().enumerate() {
            let n = i % 4;
            b.set_presence(nodes[n], TimePoint(t as u32)).unwrap();
            expected[n][t] = true;
        }
        for &(u, v, t) in &edges {
            if u == v {
                continue;
            }
            b.add_edge_at(nodes[u], nodes[v], TimePoint(t as u32)).unwrap();
            expected[u][t] = true;
            expected[v][t] = true;
        }
        let g = b.build().unwrap();
        for (i, &n) in nodes.iter().enumerate() {
            for (t, &want) in expected[i].iter().enumerate() {
                prop_assert_eq!(
                    g.node_alive_at(n, TimePoint(t as u32)),
                    want,
                    "node {} at t{}", i, t
                );
            }
        }
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn save_load_roundtrip_with_values_and_labels(
        presence in proptest::collection::vec((0usize..4, 0usize..5), 0..14),
        edges in proptest::collection::vec((0usize..4, 0usize..4, 0usize..5, 1i64..50), 0..14),
        roles in proptest::collection::vec((0usize..4, 0usize..5, 0usize..3), 0..14),
    ) {
        // Random graphs with categorical static attributes, categorical
        // time-varying labels, and integer edge values must survive
        // save_dir → load_dir bit-for-bit (modulo category re-interning).
        let mut schema = AttributeSchema::new();
        schema.declare("team", Temporality::Static).unwrap();
        schema.declare("role", Temporality::TimeVarying).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(5), schema);
        let team = b.schema().id("team").unwrap();
        let role = b.schema().id("role").unwrap();
        let nodes: Vec<_> = (0..4).map(|i| b.add_node(&format!("n{i}")).unwrap()).collect();
        for (i, &n) in nodes.iter().enumerate() {
            let v = b.intern_category(team, ["red", "blue"][i % 2]);
            b.set_static(n, team, v).unwrap();
        }
        for &(n, t) in &presence {
            b.set_presence(nodes[n], TimePoint(t as u32)).unwrap();
        }
        for &(u, v, t, w) in &edges {
            if u == v {
                continue;
            }
            // implies edge + endpoint presence at t
            b.set_edge_value(nodes[u], nodes[v], TimePoint(t as u32), Value::Int(w)).unwrap();
        }
        for &(n, t, r) in &roles {
            let v = b.intern_category(role, ["dev", "ops", "qa"][r]);
            // implies node presence at t
            b.set_time_varying(nodes[n], role, TimePoint(t as u32), v).unwrap();
        }
        let g = b.build().unwrap();

        let dir = roundtrip_dir();
        save_dir(&g, &dir).unwrap();
        let h = load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        prop_assert_eq!(h.n_nodes(), g.n_nodes());
        prop_assert_eq!(h.n_edges(), g.n_edges());
        prop_assert_eq!(h.domain().labels(), g.domain().labels());
        prop_assert!(h.validate().is_ok());
        let (hteam, hrole) = (h.schema().id("team").unwrap(), h.schema().id("role").unwrap());
        for n in g.node_ids() {
            let hn = h.node_id(g.node_name(n)).expect("node survives");
            prop_assert_eq!(
                h.node_timestamp(hn).iter().collect::<Vec<_>>(),
                g.node_timestamp(n).iter().collect::<Vec<_>>(),
                "presence of {}", g.node_name(n)
            );
            for t in g.domain().iter() {
                // categorical values compare by rendered label (codes are
                // re-interned on load)
                prop_assert_eq!(
                    h.schema().def(hteam).render(&h.attr_value(hn, hteam, t)),
                    g.schema().def(team).render(&g.attr_value(n, team, t))
                );
                prop_assert_eq!(
                    h.schema().def(hrole).render(&h.attr_value(hn, hrole, t)),
                    g.schema().def(role).render(&g.attr_value(n, role, t))
                );
            }
        }
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let hu = h.node_id(g.node_name(u)).unwrap();
            let hv = h.node_id(g.node_name(v)).unwrap();
            let he = h.edge_between(hu, hv).expect("edge survives");
            prop_assert_eq!(
                h.edge_timestamp(he).iter().collect::<Vec<_>>(),
                g.edge_timestamp(e).iter().collect::<Vec<_>>()
            );
            if let (Some(gv), Some(hv_)) = (g.edge_values_matrix(), h.edge_values_matrix()) {
                for t in 0..g.domain().len() {
                    prop_assert_eq!(
                        hv_.get(he.index(), t),
                        gv.get(e.index(), t),
                        "edge value ({}, {}) at t{}", g.node_name(u), g.node_name(v), t
                    );
                }
            }
        }
    }
}
