//! Concurrency regression tests for the snapshot registry, which this
//! crate now backs with `tempo_race::EpochMap` — the protocol the
//! interleaving checker enumerates exhaustively. These tests exercise the
//! same invariants under real OS-thread contention: every successful CAS
//! bumps the epoch exactly once, losers never clobber, and `get` never
//! observes a torn `(graph, epoch)` pair.

use std::sync::Arc;
use tempo_graph::fixtures;
use tempo_server::SnapshotRegistry;

#[test]
fn concurrent_cas_writers_bump_epoch_once_per_win() {
    let reg = Arc::new(SnapshotRegistry::new());
    reg.insert("g", Arc::new(fixtures::fig1()));
    let writers = 4;
    let attempts_each = 200;
    let wins: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..writers)
            .map(|_| {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let mut wins = 0usize;
                    for _ in 0..attempts_each {
                        let (cur, epoch) = reg.get("g").expect("entry never removed");
                        let next = Arc::new(fixtures::fig1());
                        match reg.replace_if_current("g", &cur, next) {
                            Some(new_epoch) => {
                                assert!(
                                    new_epoch > epoch,
                                    "CAS win must advance the epoch ({epoch} -> {new_epoch})"
                                );
                                wins += 1;
                            }
                            None => {
                                // Lost to a concurrent replacement; the entry
                                // must still be present with a newer epoch.
                                let (_, now) = reg.get("g").expect("entry never removed");
                                assert!(now >= epoch, "epochs are monotone");
                            }
                        }
                    }
                    wins
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("writer"))
            .collect()
    });
    let total_wins: usize = wins.iter().sum();
    let (_, final_epoch) = reg.get("g").expect("entry never removed");
    assert_eq!(
        final_epoch as usize,
        1 + total_wins,
        "every successful CAS bumps the epoch exactly once"
    );
    assert!(
        total_wins >= writers,
        "each writer's first CAS can win at most once per round, but some must win"
    );
}

#[test]
fn concurrent_readers_never_observe_a_torn_pair() {
    let reg = Arc::new(SnapshotRegistry::new());
    let g0 = Arc::new(fixtures::fig1());
    reg.insert("g", Arc::clone(&g0));
    std::thread::scope(|scope| {
        let writer = {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let mut cur = g0;
                for _ in 0..300 {
                    let next = Arc::new(fixtures::fig1());
                    let won = reg.replace_if_current("g", &cur, Arc::clone(&next));
                    assert!(won.is_some(), "single writer cannot lose the CAS");
                    cur = next;
                }
            })
        };
        for _ in 0..2 {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..300 {
                    let (graph, epoch) = reg.get("g").expect("entry never removed");
                    assert!(
                        epoch >= last_epoch,
                        "epochs are monotone under a single writer"
                    );
                    // The pair is published atomically: whatever epoch we
                    // read, the graph handle is a live, queryable snapshot.
                    assert!(graph.n_nodes() > 0);
                    last_epoch = epoch;
                }
            });
        }
        writer.join().expect("writer");
    });
}
