//! End-to-end round trips against a live `tempo-server` over TCP:
//! spawn on an ephemeral port, drive the line protocol from real client
//! sockets (including concurrently), and shut down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tempo_server::{spawn, ServerConfig};

/// A tiny blocking client for the `OK <n>` / `ERR …` line protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let writer = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// Sends one request and returns `(status_line, payload_lines)`. The
    /// status line is `OK <n> [epoch=<e>]` or `ERR <message>`; the payload
    /// count is the second whitespace-separated token.
    fn request(&mut self, line: &str) -> (String, Vec<String>) {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("read status");
        let status = status.trim_end().to_owned();
        let mut payload = Vec::new();
        if let Some(rest) = status.strip_prefix("OK ") {
            let n: usize = rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse()
                .unwrap_or_else(|_| panic!("bad count: {status}"));
            for _ in 0..n {
                let mut l = String::new();
                self.reader.read_line(&mut l).expect("read payload line");
                payload.push(l.trim_end().to_owned());
            }
        }
        (status, payload)
    }

    /// The `epoch=<e>` token of an `OK` status line, if present.
    fn epoch_of(status: &str) -> Option<u64> {
        status
            .split_whitespace()
            .find_map(|t| t.strip_prefix("epoch="))
            .map(|e| e.parse().expect("epoch parses"))
    }
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    }
}

#[test]
fn protocol_roundtrip_and_graceful_shutdown() {
    let server = spawn(test_config()).expect("spawn server");
    let addr = server.addr();
    let mut c = Client::connect(addr);

    let (status, payload) = c.request("ping");
    assert_eq!(status, "OK 1");
    assert_eq!(payload, vec!["pong"]);

    let (status, payload) = c.request("generate g school seed=7");
    assert!(status.starts_with("OK "), "generate failed: {status}");
    assert_eq!(payload[0], "snapshot g registered");
    assert_eq!(Client::epoch_of(&status), Some(1));

    let (status, payload) = c.request("snapshots");
    assert_eq!(status, "OK 1");
    assert!(payload[0].starts_with("g  nodes="), "got {payload:?}");
    assert!(payload[0].ends_with("epoch=1"), "got {payload:?}");

    let (status, payload) = c.request("stats g");
    assert!(status.starts_with("OK "), "got {status}");
    assert_eq!(Client::epoch_of(&status), Some(1));
    assert!(
        payload.iter().any(|l| l.contains("odes")),
        "stats payload: {payload:?}"
    );

    let explore = "explore g event=growth semantics=union extend=new k=2 attrs=grade";
    let (status, explore_payload) = c.request(explore);
    assert!(status.starts_with("OK "), "explore failed: {status}");

    // request-scoped timeout: a zero budget must error, not hang
    let (status, _) = c.request(&format!("{explore} timeout_ms=0"));
    assert!(status.starts_with("ERR timeout:"), "got {status}");

    // request-scoped sharding: bit-identical payload through the sharded
    // evaluator, and budget checkpoints still fire inside it
    let (status, payload) = c.request(&format!("{explore} shards=4"));
    assert!(
        status.starts_with("OK "),
        "sharded explore failed: {status}"
    );
    assert_eq!(payload, explore_payload, "sharded payload diverged");
    let (status, _) = c.request(&format!("{explore} shards=4 timeout_ms=0"));
    assert!(status.starts_with("ERR timeout:"), "got {status}");

    // request-scoped row limit: payload truncated with a marker line
    let (status, payload) = c.request("stats g limit=1");
    assert_eq!(status, "OK 2 epoch=1", "got {status}");
    assert!(
        payload[1].contains("more rows (limit 1)"),
        "got {payload:?}"
    );

    let (status, payload) = c.request("metrics");
    assert!(status.starts_with("OK "), "got {status}");
    let text = payload.join("\n");
    assert!(
        text.contains("graphtempo_server_requests_total"),
        "metrics missing counter:\n{text}"
    );
    assert!(
        text.contains("graphtempo_server_timeouts_total"),
        "metrics missing timeouts:\n{text}"
    );

    let (status, _) = c.request("bogus-command g");
    assert!(status.starts_with("ERR "), "got {status}");

    // a second connection sees the same registry
    let mut c2 = Client::connect(addr);
    let (status, _) = c2.request("stats g");
    assert!(status.starts_with("OK "), "second client: {status}");

    let (status, _) = c.request("drop g");
    assert_eq!(status, "OK 1");
    let (status, _) = c.request("stats g");
    assert!(status.starts_with("ERR "), "dropped snapshot still served");

    let (status, _) = c.request("shutdown");
    assert_eq!(status, "OK 1");
    // join returns only when the accept loop and workers have wound down
    server.join();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let server = spawn(test_config()).expect("spawn server");
    let addr = server.addr();

    let mut setup = Client::connect(addr);
    let (status, _) = setup.request("generate g school seed=11");
    assert!(status.starts_with("OK "), "generate failed: {status}");

    let queries = [
        "stats g",
        "schema g",
        "agg g dist attrs=grade",
        "explore g event=growth semantics=union extend=new k=2 attrs=grade",
        "suggest g event=stability semantics=intersect extend=old attrs=grade",
    ];
    let reference: Vec<(String, Vec<String>)> = queries.iter().map(|q| setup.request(q)).collect();

    let results: Vec<Vec<(String, Vec<String>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| {
                    let mut c = Client::connect(addr);
                    let mut out = Vec::new();
                    for _ in 0..4 {
                        for q in &queries {
                            out.push(c.request(q));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (i, per_client) in results.iter().enumerate() {
        for (j, got) in per_client.iter().enumerate() {
            let want = &reference[j % queries.len()];
            assert_eq!(got, want, "client {i} request {j} diverged");
        }
    }

    server.shutdown();
}

/// The tentpole's live-ingest contract: `append` swaps the registry entry
/// atomically while other clients keep querying — every concurrent query
/// succeeds against *some* published epoch, the epochs each client observes
/// are monotone, and afterwards the snapshot has all appended timepoints.
#[test]
fn append_roundtrip_while_queries_continue() {
    const APPENDS: usize = 6;
    let server = spawn(test_config()).expect("spawn server");
    let addr = server.addr();

    let mut setup = Client::connect(addr);
    let (status, _) = setup.request("generate g school seed=5");
    assert!(status.starts_with("OK "), "generate failed: {status}");
    let (_, payload) = setup.request("snapshots");
    let timepoints_of = |line: &str| -> usize {
        line.split_whitespace()
            .find_map(|t| t.strip_prefix("timepoints="))
            .expect("snapshots line has timepoints=")
            .parse()
            .expect("timepoints parses")
    };
    let base_points = timepoints_of(&payload[0]);

    std::thread::scope(|s| {
        // writer: append new timepoints one by one, each bumping the epoch
        let writer = s.spawn(move || {
            let mut w = Client::connect(addr);
            for i in 0..APPENDS {
                let line =
                    format!("append g live{i} node=ing{i}a node=ing{i}b edge=ing{i}a,ing{i}b");
                let (status, payload) = w.request(&line);
                assert!(status.starts_with("OK "), "append {i} failed: {status}");
                assert_eq!(Client::epoch_of(&status), Some(2 + i as u64));
                assert!(payload[0].contains(&format!("appended live{i}")));
            }
        });
        // readers: hammer queries the whole time; every answer must come
        // from a published epoch, observed in monotone order per client
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    let mut last_epoch = 0;
                    for _ in 0..30 {
                        let (status, payload) = c.request("stats g");
                        assert!(status.starts_with("OK "), "query failed: {status}");
                        assert!(!payload.is_empty());
                        let e = Client::epoch_of(&status).expect("query carries epoch");
                        assert!(e >= last_epoch, "epoch went backwards: {e} < {last_epoch}");
                        last_epoch = e;
                    }
                })
            })
            .collect();
        writer.join().expect("writer thread");
        for r in readers {
            r.join().expect("reader thread");
        }
    });

    // all appended points landed, exactly once each
    let (status, payload) = setup.request("snapshots");
    assert_eq!(status, "OK 1");
    assert_eq!(timepoints_of(&payload[0]), base_points + APPENDS);
    assert!(
        payload[0].ends_with(&format!("epoch={}", 1 + APPENDS)),
        "got {payload:?}"
    );
    let (status, payload) = setup.request("stats g");
    assert_eq!(Client::epoch_of(&status), Some(1 + APPENDS as u64));
    let text = payload.join("\n");
    for i in 0..APPENDS {
        assert!(
            text.contains(&format!("live{i}")),
            "missing live{i}:\n{text}"
        );
    }

    server.shutdown();
}
