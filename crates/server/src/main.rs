//! `tempo-server` binary: binds the query service and runs until a client
//! sends `shutdown` (or the process receives a fatal signal).
//!
//! ```text
//! $ tempo-server --addr 127.0.0.1:7341 --timeout-ms 5000 --max-rows 1000
//! tempo-server listening on 127.0.0.1:7341
//! ```

use tempo_columnar::SparseMode;
use tempo_server::ServerConfig;

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7341".to_owned(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--timeout-ms" => {
                let v: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms needs an integer".to_owned())?;
                cfg.default_timeout_ms = (v > 0).then_some(v);
            }
            "--max-rows" => {
                cfg.default_max_rows = value("--max-rows")?
                    .parse()
                    .map_err(|_| "--max-rows needs an integer".to_owned())?;
            }
            "--max-conns" => {
                cfg.max_connections = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns needs an integer".to_owned())?;
            }
            "--help" | "-h" => {
                return Err("usage: tempo-server [--addr HOST:PORT] [--timeout-ms N] \
                     [--max-rows N] [--max-conns N]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    // The only environment read, once at startup; every graph the server
    // builds carries this mode explicitly from here on.
    cfg.sparse_mode =
        SparseMode::from_env_value(std::env::var("GRAPHTEMPO_SPARSE").ok().as_deref());

    match tempo_server::spawn(cfg) {
        Ok(server) => {
            println!("tempo-server listening on {}", server.addr());
            server.join();
            println!("tempo-server stopped");
        }
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    }
}
