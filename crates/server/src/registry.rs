//! Named registry of immutable graph snapshots.
//!
//! Snapshots are `Arc<TemporalGraph>`: once registered they are never
//! mutated, so any number of request handlers can hold and query one
//! concurrently while the registry itself stays behind a short-lived lock.
//!
//! Every name carries a monotonically increasing **epoch id**, starting at
//! 1 and bumped on every replacement (a `load`/`generate` over an existing
//! name, or an `append`). Responses echo the epoch so a client can always
//! tell which version of a snapshot answered, and
//! [`SnapshotRegistry::replace_if_current`] gives writers a compare-and-swap
//! primitive: an append computed against an epoch that has since been
//! replaced is rejected instead of silently clobbering the newer graph.
//!
//! The registry is a thin façade over [`tempo_race::EpochMap`] — the CAS +
//! epoch-publication protocol itself lives there, where the interleaving
//! checker exhaustively enumerates concurrent writer schedules against it
//! (torn `(value, epoch)` reads, lost updates) on every `cargo run -p
//! tempo-race` sweep. The façade pins the value type and keeps this
//! module's API (and its tests) independent of the checker crate's
//! generics.

use std::sync::Arc;
use tempo_graph::TemporalGraph;
use tempo_race::EpochMap;

/// A concurrent map from snapshot name to an immutable shared graph.
#[derive(Default)]
pub struct SnapshotRegistry {
    inner: EpochMap<Arc<TemporalGraph>>,
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry")
            .field("len", &self.len())
            .finish()
    }
}

impl SnapshotRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a snapshot under `name`, returning the new
    /// epoch id: 1 for a fresh name, the previous epoch + 1 on replacement.
    pub fn insert(&self, name: &str, graph: Arc<TemporalGraph>) -> u64 {
        self.inner.insert(name, graph)
    }

    /// Returns the snapshot registered under `name` with its epoch, if any.
    /// The `Arc` is cloned and the lock released before returning, so
    /// callers never hold the registry across query execution.
    pub fn get(&self, name: &str) -> Option<(Arc<TemporalGraph>, u64)> {
        self.inner.get(name)
    }

    /// Atomically replaces `name` with `next` **only if** the registered
    /// graph is still exactly `current` (pointer identity). Returns the new
    /// epoch on success, or `None` if the entry was removed or replaced in
    /// the meantime — the caller computed against a stale epoch.
    pub fn replace_if_current(
        &self,
        name: &str,
        current: &Arc<TemporalGraph>,
        next: Arc<TemporalGraph>,
    ) -> Option<u64> {
        self.inner.replace_if_current(name, current, next)
    }

    /// Removes a snapshot; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.remove(name)
    }

    /// Lists `(name, graph, epoch)` triples in name order.
    pub fn list(&self) -> Vec<(String, Arc<TemporalGraph>, u64)> {
        self.inner.list()
    }

    /// Number of registered snapshots.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures;

    #[test]
    fn insert_get_remove_roundtrip() {
        let reg = SnapshotRegistry::new();
        assert!(reg.is_empty());
        let g = Arc::new(fixtures::fig1());
        assert_eq!(reg.insert("a", Arc::clone(&g)), 1);
        assert_eq!(reg.insert("b", Arc::clone(&g)), 1);
        assert_eq!(reg.len(), 2);
        let (got, epoch) = reg.get("a").expect("invariant: just inserted");
        assert!(Arc::ptr_eq(&got, &g));
        assert_eq!(epoch, 1);
        assert!(reg.get("zzz").is_none());
        let names: Vec<String> = reg.list().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn replacement_bumps_epoch_monotonically() {
        let reg = SnapshotRegistry::new();
        let g1 = Arc::new(fixtures::fig1());
        let g2 = Arc::new(fixtures::fig1());
        assert_eq!(reg.insert("g", Arc::clone(&g1)), 1);
        assert_eq!(reg.insert("g", Arc::clone(&g2)), 2);
        let (got, epoch) = reg.get("g").expect("invariant: present");
        assert!(Arc::ptr_eq(&got, &g2));
        assert_eq!(epoch, 2);
        // re-registering after a drop starts a fresh epoch line
        assert!(reg.remove("g"));
        assert_eq!(reg.insert("g", g1), 1);
    }

    #[test]
    fn replace_if_current_is_a_cas() {
        let reg = SnapshotRegistry::new();
        let g1 = Arc::new(fixtures::fig1());
        let g2 = Arc::new(fixtures::fig1());
        let g3 = Arc::new(fixtures::fig1());
        reg.insert("g", Arc::clone(&g1));
        // succeeds while g1 is still current
        assert_eq!(reg.replace_if_current("g", &g1, Arc::clone(&g2)), Some(2));
        // a writer that computed against g1 loses the race
        assert_eq!(reg.replace_if_current("g", &g1, Arc::clone(&g3)), None);
        let (got, epoch) = reg.get("g").expect("invariant: present");
        assert!(Arc::ptr_eq(&got, &g2));
        assert_eq!(epoch, 2);
        // and against a missing name
        assert_eq!(reg.replace_if_current("x", &g1, g3), None);
    }
}
