//! Named registry of immutable graph snapshots.
//!
//! Snapshots are `Arc<TemporalGraph>`: once registered they are never
//! mutated, so any number of request handlers can hold and query one
//! concurrently while the registry itself stays behind a short-lived lock.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use tempo_graph::TemporalGraph;

/// A concurrent map from snapshot name to an immutable shared graph.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    inner: Mutex<BTreeMap<String, Arc<TemporalGraph>>>,
}

impl SnapshotRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the map, recovering from a poisoned lock: the data is a plain
    /// map of `Arc`s and stays structurally valid even if a holder panicked.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Arc<TemporalGraph>>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers (or replaces) a snapshot under `name`.
    pub fn insert(&self, name: &str, graph: Arc<TemporalGraph>) {
        self.lock().insert(name.to_owned(), graph);
    }

    /// Returns the snapshot registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<TemporalGraph>> {
        self.lock().get(name).cloned()
    }

    /// Removes a snapshot; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.lock().remove(name).is_some()
    }

    /// Lists `(name, graph)` pairs in name order.
    pub fn list(&self) -> Vec<(String, Arc<TemporalGraph>)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Number of registered snapshots.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures;

    #[test]
    fn insert_get_remove_roundtrip() {
        let reg = SnapshotRegistry::new();
        assert!(reg.is_empty());
        let g = Arc::new(fixtures::fig1());
        reg.insert("a", Arc::clone(&g));
        reg.insert("b", Arc::clone(&g));
        assert_eq!(reg.len(), 2);
        assert!(Arc::ptr_eq(
            &reg.get("a").expect("invariant: just inserted"),
            &g
        ));
        assert!(reg.get("zzz").is_none());
        let names: Vec<String> = reg.list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert_eq!(reg.len(), 1);
    }
}
