//! `tempo-server` — a long-running, zero-framework GraphTempo query service.
//!
//! The server keeps a [`SnapshotRegistry`] of immutable `Arc<TemporalGraph>`
//! snapshots and serves concurrent clients over a plain TCP line protocol.
//! Each request line is dispatched to a short-lived [`graphtempo_cli::Session`]
//! built around the shared snapshot, so the full shell command surface
//! (`stats`, `agg`, `explore`, `zoom`, …) is available without a second
//! implementation — and without any process-global state: the sparse-mode
//! policy and request limits travel explicitly with each session.
//!
//! ## Protocol
//!
//! Requests are single lines, `\n`-terminated. Responses are
//!
//! ```text
//! OK <n> [epoch=<e>]\n   followed by exactly n payload lines, or
//! ERR <message>\n
//! ```
//!
//! Snapshot-scoped responses append an `epoch=<e>` token to the status
//! line: every snapshot name carries a monotonically increasing epoch id
//! (starting at 1, bumped on every `load`/`generate` replacement and every
//! `append`), so a client can always tell which version of the graph
//! answered. Clients should split the status line on whitespace — the
//! payload count is the second token.
//!
//! Server-level commands: `ping`, `help`, `snapshots`, `generate <name> …`,
//! `load <name> <dir>`, `drop <name>`, `zoom <src> as=<dst> …`,
//! `append <name> <label> …`, `metrics`, `shutdown`. Query commands are
//! addressed to a snapshot: `<cmd> <snapshot> [args…]`, e.g. `stats g` or
//! `explore g event=growth k=5 attrs=gender timeout_ms=500 limit=100`.
//! The `timeout_ms=`, `limit=`, and `shards=` kwargs are request-scoped
//! limits enforced by the server (they override the configured defaults);
//! `shards=` routes `explore` through the entity-space sharded evaluator,
//! clamped to [`MAX_SHARDS`].
//!
//! `append <name> <label> [node=N]… [edge=U,V]… [tv=N,ATTR,VAL]…
//! [static=N,ATTR,VAL]… [edgeval=U,V,VAL]…` appends one timepoint to a
//! registered snapshot copy-on-write ([`tempo_graph::GraphVersions`]): the
//! new epoch is assembled **outside** the registry lock while in-flight
//! queries keep reading the old epoch, then swapped in atomically (a
//! concurrent replacement of the same name loses the race and errors
//! rather than clobbering).

#![warn(missing_docs)]

pub mod registry;

pub use registry::SnapshotRegistry;

use graphtempo_cli::error::CliError;
use graphtempo_cli::parser::tokenize;
use graphtempo_cli::patch::parse_patch;
use graphtempo_cli::{QueryLimits, Session};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tempo_columnar::SparseMode;
use tempo_graph::{GraphError, GraphVersions};

/// How long a blocked read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(200);

/// Ceiling on the per-request `shards=` kwarg. Fragments cost memory and
/// a spinning worker each, so a hostile request must not be able to ask
/// for thousands of them.
pub const MAX_SHARDS: usize = 64;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7341`. Port 0 picks a free port.
    pub addr: String,
    /// Sparse-mode policy applied to every graph the server builds.
    pub sparse_mode: SparseMode,
    /// Default per-request timeout; `None` disables the default deadline.
    pub default_timeout_ms: Option<u64>,
    /// Default cap on listing rows in a response.
    pub default_max_rows: usize,
    /// Maximum concurrently served connections; extra clients get `ERR busy`.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            sparse_mode: SparseMode::Auto,
            default_timeout_ms: Some(30_000),
            default_max_rows: 10_000,
            max_connections: 64,
        }
    }
}

/// Shared state behind every connection handler.
#[derive(Debug)]
struct ServiceState {
    cfg: ServerConfig,
    addr: std::net::SocketAddr,
    registry: SnapshotRegistry,
    shutdown: AtomicBool,
}

impl ServiceState {
    /// Raises the shutdown flag and pokes the accept loop awake.
    fn request_shutdown(&self) {
        // ordering: the flag is purely advisory — it guards no other data,
        // and the wake-up connection below synchronizes through the socket.
        self.shutdown.store(true, Ordering::Relaxed);
        // The accept loop blocks in accept(); a throw-away connection to
        // ourselves unblocks it so the flag is observed promptly.
        let _ = TcpStream::connect(self.addr);
    }

    fn shutting_down(&self) -> bool {
        // ordering: advisory flag, no data published under it (see store).
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A running server. Dropping it requests shutdown and joins the accept loop.
#[derive(Debug)]
pub struct Server {
    addr: std::net::SocketAddr,
    state: Arc<ServiceState>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Registers a snapshot directly (useful for embedding and tests).
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.state.registry
    }

    /// Asks the server to stop accepting and finish in-flight connections.
    pub fn request_shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Blocks until the server shuts down (via the `shutdown` command or
    /// [`Server::request_shutdown`]).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Requests shutdown and waits for the server to wind down.
    pub fn shutdown(self) {
        self.state.request_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(h) = self.accept.take() {
            self.state.request_shutdown();
            let _ = h.join();
        }
    }
}

/// Binds the listener and spawns the accept loop. Returns once the socket
/// is bound; the returned [`Server`] owns the background thread.
pub fn spawn(cfg: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServiceState {
        cfg,
        addr,
        registry: SnapshotRegistry::new(),
        shutdown: AtomicBool::new(false),
    });
    let loop_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(&listener, &loop_state));
    Ok(Server {
        addr,
        state,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let active = tempo_instrument::global().gauge("server.active_connections");
    for incoming in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let Ok(stream) = incoming else { continue };
        workers.retain(|h| !h.is_finished());
        if workers.len() >= state.cfg.max_connections {
            let mut stream = stream;
            let _ = stream.write_all(b"ERR busy: connection limit reached\n");
            continue;
        }
        tempo_instrument::global()
            .counter("server.connections")
            .inc();
        active.add(1);
        let conn_state = Arc::clone(state);
        let conn_active = Arc::clone(&active);
        workers.push(std::thread::spawn(move || {
            handle_connection(stream, &conn_state);
            conn_active.add(-1);
        }));
    }
    for h in workers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServiceState>) {
    // A short read timeout turns the blocking read loop into a poll so the
    // handler notices shutdown even while a client sits idle.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if state.shutting_down() {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let (response, shutdown_after) = handle_request(state, request);
        if writer.write_all(response.as_bytes()).is_err() {
            break;
        }
        let _ = writer.flush();
        if shutdown_after {
            state.request_shutdown();
            break;
        }
    }
}

/// Wire encoding of a successful response. Snapshot-scoped responses carry
/// the answering epoch as a trailing `epoch=<e>` token on the status line.
fn ok(lines: &[String], epoch: Option<u64>) -> String {
    let mut out = match epoch {
        Some(e) => format!("OK {} epoch={e}\n", lines.len()),
        None => format!("OK {}\n", lines.len()),
    };
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Wire encoding of an error. The message is flattened to one line.
fn err(msg: &str) -> String {
    let flat: String = msg
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {flat}\n")
}

/// Splits a multi-line payload into protocol lines (empty payload → none).
fn payload_lines(text: &str) -> Vec<String> {
    if text.is_empty() {
        Vec::new()
    } else {
        text.lines().map(str::to_owned).collect()
    }
}

/// Commands the server forwards verbatim to a snapshot-scoped session.
const SNAPSHOT_COMMANDS: &[&str] = &[
    "stats",
    "schema",
    "project",
    "union",
    "intersect",
    "diff",
    "agg",
    "evolution",
    "explore",
    "suggest",
    "cube",
    "measure",
    "solve",
    "save",
    "export",
];

/// Dispatches one request line; returns the wire response and whether the
/// server should shut down after sending it.
fn handle_request(state: &Arc<ServiceState>, request: &str) -> (String, bool) {
    tempo_instrument::global().counter("server.requests").inc();
    let _span = tempo_instrument::global()
        .histogram("server.request_ns")
        .span();
    let tokens = tokenize(request);
    let Some(cmd) = tokens.first().map(String::as_str) else {
        return (err("empty request"), false);
    };
    let _cmd_span = tempo_instrument::global()
        .histogram(&format!("server.cmd.{cmd}_ns"))
        .span();
    let rest = &tokens[1..];
    let result: Result<(Vec<String>, Option<u64>), CliError> = match cmd {
        "ping" => Ok((vec!["pong".to_owned()], None)),
        "help" => Ok((help_lines(), None)),
        "snapshots" => Ok((list_snapshots(state), None)),
        "generate" | "load" => build_snapshot(state, cmd, rest).map(|(l, e)| (l, Some(e))),
        "drop" => drop_snapshot(state, rest).map(|l| (l, None)),
        "zoom" => zoom_snapshot(state, rest).map(|(l, e)| (l, Some(e))),
        "append" => append_snapshot(state, rest).map(|(l, e)| (l, Some(e))),
        "metrics" => Ok((
            payload_lines(
                tempo_instrument::global()
                    .snapshot()
                    .render_prometheus()
                    .trim_end(),
            ),
            None,
        )),
        "shutdown" => return (ok(&["shutting down".to_owned()], None), true),
        c if SNAPSHOT_COMMANDS.contains(&c) => {
            query_snapshot(state, cmd, rest).map(|(l, e)| (l, Some(e)))
        }
        other => Err(CliError::Unknown(format!("command {other:?} (try `help`)"))),
    };
    match result {
        Ok((lines, epoch)) => (ok(&lines, epoch), false),
        Err(CliError::Graph(GraphError::Cancelled(m))) => {
            tempo_instrument::global().counter("server.timeouts").inc();
            (err(&format!("timeout: {m}")), false)
        }
        Err(e) => {
            tempo_instrument::global().counter("server.errors").inc();
            (err(&e.to_string()), false)
        }
    }
}

fn help_lines() -> Vec<String> {
    let mut lines = vec![
        "server commands:".to_owned(),
        "  ping | snapshots | metrics | shutdown".to_owned(),
        "  generate <name> <dblp|movielens|school|random> [scale=] [seed=]".to_owned(),
        "  load <name> <dir> | drop <name>".to_owned(),
        "  zoom <src> as=<name> <zoom args>".to_owned(),
        "  append <name> <label> [node=N] [edge=U,V] [tv=N,ATTR,VAL] [static=N,ATTR,VAL] \
         [edgeval=U,V,VAL]"
            .to_owned(),
        "snapshot queries: <cmd> <snapshot> [args…] [timeout_ms=] [limit=] [shards=]".to_owned(),
        "snapshot-scoped responses carry `epoch=<e>` on the OK line".to_owned(),
        String::new(),
    ];
    lines.extend(graphtempo_cli::HELP.lines().map(str::to_owned));
    lines
}

fn list_snapshots(state: &Arc<ServiceState>) -> Vec<String> {
    let snaps = state.registry.list();
    if snaps.is_empty() {
        return vec!["(no snapshots)".to_owned()];
    }
    snaps
        .into_iter()
        .map(|(name, g, epoch)| {
            format!(
                "{name}  nodes={} edges={} timepoints={} epoch={epoch}",
                g.n_nodes(),
                g.n_edges(),
                g.domain().len()
            )
        })
        .collect()
}

/// `generate <name> <dataset> [kwargs…]` / `load <name> <dir>`: builds a
/// graph through a scratch session and registers it as a snapshot.
fn build_snapshot(
    state: &Arc<ServiceState>,
    cmd: &str,
    rest: &[String],
) -> Result<(Vec<String>, u64), CliError> {
    let Some((name, args)) = rest.split_first() else {
        return Err(CliError::Usage(format!("{cmd} <name> <args…>")));
    };
    validate_name(name)?;
    let mut session = Session::new().with_sparse_mode(state.cfg.sparse_mode);
    let line = rebuild_line(cmd, args);
    let summary = session.exec(&line)?;
    let graph = session
        .graph_arc()
        .ok_or_else(|| CliError::Unknown(format!("{cmd} produced no graph")))?;
    let epoch = state.registry.insert(name, graph);
    let mut lines = vec![format!("snapshot {name} registered")];
    lines.extend(payload_lines(&summary));
    Ok((lines, epoch))
}

fn drop_snapshot(state: &Arc<ServiceState>, rest: &[String]) -> Result<Vec<String>, CliError> {
    let Some(name) = rest.first() else {
        return Err(CliError::Usage("drop <name>".into()));
    };
    if state.registry.remove(name) {
        Ok(vec![format!("snapshot {name} dropped")])
    } else {
        Err(CliError::Unknown(format!("snapshot {name:?}")))
    }
}

/// `zoom <src> as=<dst> <args…>`: runs zoom on a session seeded with the
/// source snapshot and registers the result under the destination name.
fn zoom_snapshot(
    state: &Arc<ServiceState>,
    rest: &[String],
) -> Result<(Vec<String>, u64), CliError> {
    let Some((src, args)) = rest.split_first() else {
        return Err(CliError::Usage("zoom <src> as=<name> <zoom args>".into()));
    };
    let (graph, _) = state
        .registry
        .get(src)
        .ok_or_else(|| CliError::Unknown(format!("snapshot {src:?}")))?;
    let mut dst = None;
    let mut zoom_args = Vec::new();
    for a in args {
        match a.strip_prefix("as=") {
            Some(d) => dst = Some(d.to_owned()),
            None => zoom_args.push(a.clone()),
        }
    }
    let dst = dst.ok_or_else(|| CliError::Usage("zoom <src> as=<name> <zoom args>".into()))?;
    validate_name(&dst)?;
    let mut session = Session::for_snapshot(graph, QueryLimits::default())
        .with_sparse_mode(state.cfg.sparse_mode);
    let summary = session.exec(&rebuild_line("zoom", &zoom_args))?;
    let zoomed = session
        .graph_arc()
        .ok_or_else(|| CliError::Unknown("zoom produced no graph".into()))?;
    let epoch = state.registry.insert(&dst, zoomed);
    let mut lines = vec![format!("snapshot {dst} registered")];
    lines.extend(payload_lines(&summary));
    Ok((lines, epoch))
}

/// `append <snapshot> <label> [node=N]… [edge=U,V]… [tv=N,ATTR,VAL]…
/// [static=N,ATTR,VAL]… [edgeval=U,V,VAL]…`: appends one timepoint to a
/// registered snapshot copy-on-write and atomically swaps the registry
/// entry. The next epoch is assembled with [`GraphVersions`] **after** the
/// registry lock is released, so in-flight queries keep reading the old
/// `Arc` undisturbed; the final swap is a compare-and-swap that refuses to
/// clobber a concurrent replacement of the same name.
fn append_snapshot(
    state: &Arc<ServiceState>,
    rest: &[String],
) -> Result<(Vec<String>, u64), CliError> {
    let usage = "append <snapshot> <label> [node=N] [edge=U,V] [tv=N,ATTR,VAL] \
                 [static=N,ATTR,VAL] [edgeval=U,V,VAL]";
    let Some((name, rest)) = rest.split_first() else {
        return Err(CliError::Usage(usage.into()));
    };
    let Some((label, args)) = rest.split_first() else {
        return Err(CliError::Usage(usage.into()));
    };
    let (graph, _) = state
        .registry
        .get(name)
        .ok_or_else(|| CliError::Unknown(format!("snapshot {name:?}")))?;
    let patch = parse_patch(&graph, label, args)?;
    let mut versions = GraphVersions::from_arc(Arc::clone(&graph));
    let next = versions.append_timepoint(&patch)?;
    let epoch = state
        .registry
        .replace_if_current(name, &graph, Arc::clone(&next))
        .ok_or_else(|| {
            CliError::Unknown(format!(
                "snapshot {name:?} was replaced or dropped during append — retry against the \
                 current epoch"
            ))
        })?;
    Ok((
        vec![format!(
            "snapshot {name} appended {label}: nodes={} edges={} timepoints={}",
            next.n_nodes(),
            next.n_edges(),
            next.domain().len()
        )],
        epoch,
    ))
}

/// `<cmd> <snapshot> [args…]`: forwards to a request-scoped session over the
/// shared snapshot, applying request limits.
fn query_snapshot(
    state: &Arc<ServiceState>,
    cmd: &str,
    rest: &[String],
) -> Result<(Vec<String>, u64), CliError> {
    let Some((name, args)) = rest.split_first() else {
        return Err(CliError::Usage(format!("{cmd} <snapshot> [args…]")));
    };
    let (graph, epoch) = state
        .registry
        .get(name)
        .ok_or_else(|| CliError::Unknown(format!("snapshot {name:?}")))?;
    let mut limits = QueryLimits {
        timeout_ms: state.cfg.default_timeout_ms,
        max_rows: Some(state.cfg.default_max_rows),
        shards: None,
    };
    let mut query_args = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("timeout_ms=") {
            limits.timeout_ms = Some(
                v.parse()
                    .map_err(|_| CliError::Usage("timeout_ms=<int>".into()))?,
            );
        } else if let Some(v) = a.strip_prefix("limit=") {
            limits.max_rows = Some(
                v.parse()
                    .map_err(|_| CliError::Usage("limit=<int>".into()))?,
            );
        } else if let Some(v) = a.strip_prefix("shards=") {
            let s: usize = v
                .parse()
                .map_err(|_| CliError::Usage("shards=<int>".into()))?;
            limits.shards = Some(s.min(MAX_SHARDS));
        } else {
            query_args.push(a.clone());
        }
    }
    let mut session = Session::for_snapshot(graph, limits).with_sparse_mode(state.cfg.sparse_mode);
    let out = session.exec(&rebuild_line(cmd, &query_args))?;
    let mut lines = payload_lines(&out);
    // Session-level limits cover explore listings; this covers every other
    // command's output uniformly at the protocol layer.
    if let Some(cap) = limits.max_rows {
        if lines.len() > cap {
            let dropped = lines.len() - cap;
            lines.truncate(cap);
            lines.push(format!("… {dropped} more rows (limit {cap})"));
            tempo_instrument::global()
                .counter("server.rows_truncated")
                .add(dropped as u64);
        }
    }
    Ok((lines, epoch))
}

/// Rebuilds a command line from tokens, re-quoting any token with spaces.
fn rebuild_line(cmd: &str, args: &[String]) -> String {
    let mut line = cmd.to_owned();
    for a in args {
        line.push(' ');
        if a.contains(' ') {
            line.push('"');
            line.push_str(a);
            line.push('"');
        } else {
            line.push_str(a);
        }
    }
    line
}

/// Snapshot names keep the protocol unambiguous: word characters only.
fn validate_name(name: &str) -> Result<(), CliError> {
    if !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
    {
        Ok(())
    } else {
        Err(CliError::Usage(format!(
            "snapshot name {name:?} (use letters, digits, `_`, `-`, `.`)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_shapes() {
        assert_eq!(ok(&[], None), "OK 0\n");
        assert_eq!(ok(&["a".into(), "b".into()], None), "OK 2\na\nb\n");
        assert_eq!(ok(&["a".into()], Some(3)), "OK 1 epoch=3\na\n");
        assert_eq!(err("boom\nsecond"), "ERR boom second\n");
    }

    #[test]
    fn rebuild_requotes_spaced_tokens() {
        assert_eq!(
            rebuild_line("load", &["my dir/x".to_owned(), "k=1".to_owned()]),
            "load \"my dir/x\" k=1"
        );
    }

    #[test]
    fn snapshot_names_are_validated() {
        assert!(validate_name("g1.zoom-out_x").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name("a/b").is_err());
    }

    #[test]
    fn request_dispatch_without_network() {
        let state = Arc::new(ServiceState {
            cfg: ServerConfig::default(),
            addr: "127.0.0.1:1".parse().expect("invariant: literal addr"),
            registry: SnapshotRegistry::new(),
            shutdown: AtomicBool::new(false),
        });
        let (resp, stop) = handle_request(&state, "ping");
        assert_eq!(resp, "OK 1\npong\n");
        assert!(!stop);

        let (resp, _) = handle_request(&state, "generate g school seed=3");
        assert!(resp.starts_with("OK "), "unexpected: {resp}");
        assert!(
            resp.lines()
                .next()
                .expect("status line")
                .ends_with("epoch=1"),
            "missing epoch: {resp}"
        );
        let (resp, _) = handle_request(&state, "snapshots");
        assert!(resp.contains("g  nodes="), "unexpected: {resp}");
        assert!(resp.contains("epoch=1"), "unexpected: {resp}");
        let (resp, _) = handle_request(&state, "stats g");
        assert!(resp.starts_with("OK "), "unexpected: {resp}");
        assert!(
            resp.lines()
                .next()
                .expect("status line")
                .ends_with("epoch=1"),
            "missing epoch: {resp}"
        );

        // append a timepoint copy-on-write: the epoch bumps and the new
        // point is visible to subsequent queries
        let (resp, _) = handle_request(&state, "append g extra node=za node=zb edge=za,zb");
        assert!(resp.starts_with("OK 1 epoch=2"), "append failed: {resp}");
        assert!(resp.contains("appended extra"), "unexpected: {resp}");
        let (resp, _) = handle_request(&state, "snapshots");
        assert!(resp.contains("epoch=2"), "unexpected: {resp}");
        let (resp, _) = handle_request(&state, "stats g");
        assert!(
            resp.lines()
                .next()
                .expect("status line")
                .ends_with("epoch=2"),
            "missing epoch: {resp}"
        );
        assert!(resp.contains("extra"), "new timepoint missing: {resp}");
        // regenerating over the same name keeps the epoch line monotone
        let (resp, _) = handle_request(&state, "generate g school seed=3");
        assert!(
            resp.lines()
                .next()
                .expect("status line")
                .ends_with("epoch=3"),
            "unexpected: {resp}"
        );
        // append argument errors surface as ERR, not panics
        let (resp, _) = handle_request(&state, "append missing t9 node=x");
        assert!(resp.starts_with("ERR "), "unexpected: {resp}");
        let (resp, _) = handle_request(&state, "append g t9 frob=1");
        assert!(resp.starts_with("ERR "), "unexpected: {resp}");
        let (resp, _) = handle_request(&state, "append g");
        assert!(resp.starts_with("ERR usage"), "unexpected: {resp}");

        // a zero budget must surface as a timeout error, not a hang
        let (resp, _) = handle_request(
            &state,
            "explore g event=growth semantics=union extend=new k=2 attrs=grade timeout_ms=0",
        );
        assert!(resp.starts_with("ERR timeout:"), "unexpected: {resp}");

        // shards= routes through the sharded evaluator bit-identically
        let explore = "explore g event=growth semantics=union extend=new k=2 attrs=grade";
        let (plain, _) = handle_request(&state, explore);
        assert!(plain.starts_with("OK "), "unexpected: {plain}");
        let (sharded, _) = handle_request(&state, &format!("{explore} shards=4"));
        assert_eq!(sharded, plain);
        // an absurd shard count is clamped, not rejected
        let (clamped, _) = handle_request(&state, &format!("{explore} shards=100000"));
        assert_eq!(clamped, plain);
        let (resp, _) = handle_request(&state, &format!("{explore} shards=x"));
        assert!(resp.starts_with("ERR "), "unexpected: {resp}");

        // budget checkpoints still fire inside sharded evaluation
        let (resp, _) = handle_request(&state, &format!("{explore} shards=4 timeout_ms=0"));
        assert!(resp.starts_with("ERR timeout:"), "unexpected: {resp}");

        let (resp, _) = handle_request(&state, "nonsense g");
        assert!(resp.starts_with("ERR "), "unexpected: {resp}");

        let (resp, stop) = handle_request(&state, "shutdown");
        assert!(resp.starts_with("OK "), "unexpected: {resp}");
        assert!(stop);
    }
}
