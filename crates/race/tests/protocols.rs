//! Tier-1 coverage for the interleaving checker: the production protocol
//! orderings must survive exhaustive enumeration, and every seeded
//! mutation must be detected (the checker's own mutation self-test).

use tempo_race::scenarios::{mutation_cases, protocol_cases};
use tempo_race::Checker;

#[test]
fn clean_protocols_enumerate_completely_with_zero_violations() {
    let checker = Checker::default();
    for case in protocol_cases() {
        let report = case.run(&checker);
        assert!(
            report.complete,
            "{}: schedule space not fully enumerated ({} executions)",
            case.name, report.executions
        );
        assert!(
            report.violation.is_none(),
            "{}: unexpected violation:\n{}",
            case.name,
            report.violation.as_ref().expect("invariant: checked some")
        );
        assert!(
            report.executions > 1,
            "{}: degenerate enumeration",
            case.name
        );
    }
}

#[test]
fn every_seeded_mutation_is_detected() {
    let checker = Checker::default();
    for case in mutation_cases() {
        let report = case.run(&checker);
        assert!(
            report.violation.is_some(),
            "{}: seeded protocol bug was NOT detected ({} executions, complete={})",
            case.name,
            report.executions,
            report.complete
        );
    }
}

#[test]
fn real_atomics_drive_the_same_protocols() {
    use std::sync::Arc;
    use tempo_race::{RoundChannel, RoundMsg, SpinBarrier};

    // Smoke the RealAtomics instantiation with actual OS threads: a
    // barrier round plus one channel round, the same composition the
    // sharded evaluator uses.
    let barrier = Arc::new(SpinBarrier::new(3));
    let chan = Arc::new(RoundChannel::new());
    let mut handles = Vec::new();
    for _ in 0..2 {
        let barrier = Arc::clone(&barrier);
        let chan = Arc::clone(&chan);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut seen = 0u64;
            loop {
                match chan.next(&mut seen) {
                    RoundMsg::Stop => break,
                    RoundMsg::Op(op) => chan.finish(op + 1),
                }
            }
        }));
    }
    barrier.wait();
    chan.begin(20);
    assert_eq!(chan.collect(2), 42);
    chan.publish_stop();
    for h in handles {
        h.join().expect("invariant: worker cannot panic");
    }
}

#[test]
fn epoch_map_matches_registry_semantics() {
    use std::sync::Arc;
    use tempo_race::EpochMap;

    let map: EpochMap<Arc<u32>> = EpochMap::new();
    let a = Arc::new(1u32);
    let b = Arc::new(2u32);
    let c = Arc::new(3u32);
    assert!(map.is_empty());
    assert_eq!(map.insert("g", Arc::clone(&a)), 1);
    assert_eq!(map.insert("g", Arc::clone(&a)), 2);
    assert!(map.remove("g"));
    assert_eq!(map.insert("g", Arc::clone(&a)), 1);
    assert_eq!(map.replace_if_current("g", &a, Arc::clone(&b)), Some(2));
    // stale writer loses the CAS
    assert_eq!(map.replace_if_current("g", &a, Arc::clone(&c)), None);
    // missing name loses the CAS
    assert_eq!(map.replace_if_current("x", &b, Arc::clone(&c)), None);
    let (got, epoch) = map.get("g").expect("invariant: present");
    assert!(Arc::ptr_eq(&got, &b));
    assert_eq!(epoch, 2);
    assert_eq!(map.len(), 1);
    let listed = map.list();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].0, "g");
}
