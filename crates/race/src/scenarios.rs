//! Checker scenarios for the three extracted protocols, plus the seeded
//! mutation catalog.
//!
//! Each scenario models the protocol exactly as production drives it and
//! surrounds it with *plain* [`VCell`] data whose safety depends on the
//! protocol's happens-before edges — the same shape as the evaluator's
//! shard payloads and the registry's graph snapshots. A weakened ordering
//! therefore shows up as a detected data race (or a deadlock / failed
//! invariant), not as a silent wrong answer.

use std::sync::Arc;

use crate::atomics::Ordering;
use crate::barrier::{BarrierSpec, SpinBarrier};
use crate::check::{Checker, Report, Scenario, VCell, VirtualAtomics};
use crate::epoch::{EpochMap, EpochSpec};
use crate::round::{RoundChannel, RoundMsg, RoundSpec};

/// `n` threads × `rounds` barrier rounds. Every thread writes its
/// per-round slot before `wait()` and reads *all* slots after it; the
/// reads are only race-free if the barrier provides the round edge.
pub fn barrier_scenario(
    n: usize,
    rounds: usize,
    spec: BarrierSpec,
) -> impl Fn(&VirtualAtomics) -> Scenario {
    move |env| {
        let barrier = Arc::new(SpinBarrier::with(env, n, spec));
        let slots: Arc<Vec<Vec<VCell<u64>>>> = Arc::new(
            (0..n)
                .map(|_| (0..rounds).map(|_| env.cell(0, "barrier.slot")).collect())
                .collect(),
        );
        let threads = (0..n)
            .map(|t| {
                let barrier = Arc::clone(&barrier);
                let slots = Arc::clone(&slots);
                let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                    for r in 0..rounds {
                        slots[t][r].write(slot_value(t, r));
                        barrier.wait();
                        let got: u64 = (0..n).map(|u| slots[u][r].read()).sum();
                        let want: u64 = (0..n).map(|u| slot_value(u, r)).sum();
                        assert_eq!(got, want, "round {r} payload mismatch seen by t{t}");
                    }
                });
                body
            })
            .collect();
        Scenario {
            threads,
            finally: None,
        }
    }
}

fn slot_value(t: usize, r: usize) -> u64 {
    (t as u64 + 1) * 100 + r as u64
}

/// One driver + `workers` workers × `rounds` rounds over a
/// [`RoundChannel`], then a stop round. Operands and partials flow
/// through plain cells on both sides of the handshake.
pub fn round_scenario(
    workers: usize,
    rounds: usize,
    spec: RoundSpec,
) -> impl Fn(&VirtualAtomics) -> Scenario {
    move |env| {
        let chan = Arc::new(RoundChannel::with(env, spec));
        let payload: Arc<Vec<Vec<VCell<u64>>>> = Arc::new(
            (0..workers)
                .map(|_| (0..rounds).map(|_| env.cell(0, "round.payload")).collect())
                .collect(),
        );
        let results: Arc<Vec<Vec<VCell<u64>>>> = Arc::new(
            (0..workers)
                .map(|_| (0..rounds).map(|_| env.cell(0, "round.result")).collect())
                .collect(),
        );
        let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let chan = Arc::clone(&chan);
            let payload = Arc::clone(&payload);
            let results = Arc::clone(&results);
            threads.push(Box::new(move || {
                for r in 0..rounds {
                    let op = r as u64 + 1;
                    for w in 0..workers {
                        payload[w][r].write(payload_value(w, r));
                    }
                    chan.begin(op);
                    let sum = chan.collect(workers);
                    let want: u64 = (0..workers).map(|w| payload_value(w, r) + op).sum();
                    assert_eq!(sum, want, "round {r} reduced sum mismatch");
                    for w in 0..workers {
                        assert_eq!(
                            results[w][r].read(),
                            payload_value(w, r) + op,
                            "round {r} worker {w} result mismatch"
                        );
                    }
                }
                chan.publish_stop();
            }));
        }
        for w in 0..workers {
            let chan = Arc::clone(&chan);
            let payload = Arc::clone(&payload);
            let results = Arc::clone(&results);
            threads.push(Box::new(move || {
                let mut seen = 0u64;
                let mut r = 0usize;
                loop {
                    match chan.next(&mut seen) {
                        RoundMsg::Stop => break,
                        RoundMsg::Op(op) => {
                            let partial = payload[w][r].read() + op;
                            results[w][r].write(partial);
                            chan.finish(partial);
                            r += 1;
                        }
                    }
                }
            }));
        }
        Scenario {
            threads,
            finally: None,
        }
    }
}

fn payload_value(w: usize, r: usize) -> u64 {
    (w as u64 + 1) * 10 + r as u64
}

/// Two concurrent CAS writers over an [`EpochMap`] seeded at epoch 1.
/// Every stored value is an `Arc<u64>` equal to the epoch it was stored
/// with, so a torn `(value, epoch)` read or a lost update is observable
/// as a value/epoch mismatch. The final check asserts linearizability:
/// the number of CAS wins accounts exactly for the epoch advance.
pub fn epoch_scenario(spec: EpochSpec) -> impl Fn(&VirtualAtomics) -> Scenario {
    move |env| {
        let map: Arc<EpochMap<Arc<u64>, VirtualAtomics>> = Arc::new(EpochMap::with(env, spec));
        map.insert("g", Arc::new(1));
        let outcomes: Arc<Vec<VCell<Option<u64>>>> =
            Arc::new((0..2).map(|_| env.cell(None, "epoch.outcome")).collect());
        let threads = (0..2)
            .map(|w| {
                let map = Arc::clone(&map);
                let outcomes = Arc::clone(&outcomes);
                let body: Box<dyn FnOnce() + Send> = Box::new(move || {
                    let (cur, epoch) = map.get("g").expect("invariant: seeded in setup");
                    assert_eq!(
                        *cur, epoch,
                        "torn (value, epoch) pair observed by writer {w}"
                    );
                    let won = map.replace_if_current("g", &cur, Arc::new(epoch + 1));
                    outcomes[w].write(won);
                });
                body
            })
            .collect();
        let finally_map = Arc::clone(&map);
        let finally_outcomes = Arc::clone(&outcomes);
        Scenario {
            threads,
            finally: Some(Box::new(move || {
                let (value, epoch) = finally_map.get("g").expect("invariant: never removed");
                assert_eq!(*value, epoch, "final (value, epoch) pair is torn");
                let mut wins: Vec<u64> =
                    (0..2).filter_map(|w| finally_outcomes[w].read()).collect();
                assert!(
                    !wins.is_empty(),
                    "no writer succeeded: CAS lost both updates"
                );
                assert_eq!(
                    epoch,
                    1 + wins.len() as u64,
                    "epoch advance does not match the number of CAS wins"
                );
                wins.sort_unstable();
                wins.dedup();
                assert_eq!(
                    1 + wins.len() as u64,
                    epoch,
                    "two CAS wins reported the same epoch"
                );
            })),
        }
    }
}

/// One named checker case; `expect_violation` distinguishes the clean
/// protocol sweeps from the seeded-mutation detections.
pub struct Case {
    /// Display name.
    pub name: &'static str,
    /// Whether the checker is *required* to report a violation.
    pub expect_violation: bool,
    run: Box<dyn Fn(&Checker) -> Report>,
}

impl Case {
    /// Runs the case under `checker`.
    #[must_use]
    pub fn run(&self, checker: &Checker) -> Report {
        (self.run)(checker)
    }
}

fn clean(name: &'static str, run: impl Fn(&Checker) -> Report + 'static) -> Case {
    Case {
        name,
        expect_violation: false,
        run: Box::new(run),
    }
}

fn seeded(name: &'static str, run: impl Fn(&Checker) -> Report + 'static) -> Case {
    Case {
        name,
        expect_violation: true,
        run: Box::new(run),
    }
}

/// The clean protocol sweeps: production orderings, zero violations and
/// complete enumeration required.
#[must_use]
pub fn protocol_cases() -> Vec<Case> {
    vec![
        clean("barrier n=2 rounds=2", |c| {
            c.check(
                "barrier n=2 rounds=2",
                barrier_scenario(2, 2, BarrierSpec::default()),
            )
        }),
        clean("barrier n=3 rounds=1", |c| {
            c.check(
                "barrier n=3 rounds=1",
                barrier_scenario(3, 1, BarrierSpec::default()),
            )
        }),
        clean("round workers=1 rounds=2", |c| {
            c.check(
                "round workers=1 rounds=2",
                round_scenario(1, 2, RoundSpec::default()),
            )
        }),
        clean("round workers=2 rounds=1", |c| {
            c.check(
                "round workers=2 rounds=1",
                round_scenario(2, 1, RoundSpec::default()),
            )
        }),
        clean("epoch CAS writers=2", |c| {
            c.check("epoch CAS writers=2", epoch_scenario(EpochSpec::default()))
        }),
    ]
}

/// The seeded mutations: each deliberately weakens one protocol site and
/// must be reported by the checker.
#[must_use]
pub fn mutation_cases() -> Vec<Case> {
    vec![
        seeded("barrier: generation publish downgraded to Relaxed", |c| {
            let spec = BarrierSpec {
                publish: Ordering::Relaxed,
                ..BarrierSpec::default()
            };
            c.check("barrier publish=Relaxed", barrier_scenario(2, 1, spec))
        }),
        seeded("barrier: arrival fetch_add downgraded to Relaxed", |c| {
            let spec = BarrierSpec {
                arrive: Ordering::Relaxed,
                ..BarrierSpec::default()
            };
            c.check("barrier arrive=Relaxed", barrier_scenario(2, 1, spec))
        }),
        seeded("barrier: generation spin downgraded to Relaxed", |c| {
            let spec = BarrierSpec {
                spin: Ordering::Relaxed,
                ..BarrierSpec::default()
            };
            c.check("barrier spin=Relaxed", barrier_scenario(2, 1, spec))
        }),
        seeded("round: round publish downgraded to Relaxed", |c| {
            let spec = RoundSpec {
                publish: Ordering::Relaxed,
                ..RoundSpec::default()
            };
            c.check("round publish=Relaxed", round_scenario(1, 1, spec))
        }),
        seeded("round: done increment downgraded to Relaxed", |c| {
            let spec = RoundSpec {
                finish: Ordering::Relaxed,
                ..RoundSpec::default()
            };
            c.check("round finish=Relaxed", round_scenario(1, 1, spec))
        }),
        seeded("round: done collect downgraded to Relaxed", |c| {
            let spec = RoundSpec {
                collect: Ordering::Relaxed,
                ..RoundSpec::default()
            };
            c.check("round collect=Relaxed", round_scenario(1, 1, spec))
        }),
        seeded("round: reduction reset moved after publication", |c| {
            let spec = RoundSpec {
                reset_before_publish: false,
                ..RoundSpec::default()
            };
            c.check("round reset-after-publish", round_scenario(1, 1, spec))
        }),
        seeded("epoch: get() splits value and epoch reads", |c| {
            let spec = EpochSpec {
                coupled_get: false,
                ..EpochSpec::default()
            };
            c.check("epoch torn get", epoch_scenario(spec))
        }),
        seeded("epoch: replace_if_current skips the identity check", |c| {
            let spec = EpochSpec {
                cas_checks_identity: false,
                ..EpochSpec::default()
            };
            c.check("epoch blind replace", epoch_scenario(spec))
        }),
    ]
}
