//! Driver→workers round broadcast with sum/done reduction, extracted
//! from the sharded evaluator's `GroupComms`.
//!
//! Per round: the driver resets the reduction cells, stores the operand,
//! and bumps `round` with release semantics — the single edge that
//! publishes the operand (and any plain data prepared before `begin`) to
//! workers spinning on `round` with acquire loads. Workers deposit their
//! partial into `sum` (relaxed is enough: the values are collected only
//! after the `done` handshake) and announce completion on `done` with a
//! release `fetch_add`; all of those RMWs form one release sequence, so
//! the driver's single acquire wait on `done` synchronizes with every
//! worker at once.

use crate::atomics::{AtomicBoolT, AtomicU64T, AtomicUsizeT, Atomics, Ordering};
use crate::real::RealAtomics;

/// Memory orderings (and one ordering-sensitive code shape) of the round
/// protocol sites. Production uses [`RoundSpec::default`].
#[derive(Clone, Copy, Debug)]
pub struct RoundSpec {
    /// Driver's round bump (release edge of the broadcast).
    pub publish: Ordering,
    /// Workers' round spin load (acquire edge of the broadcast).
    pub observe: Ordering,
    /// Operand / stop-flag accesses (ordered by the round edge).
    pub payload: Ordering,
    /// Workers' `sum` contribution (ordered by the done handshake).
    pub submit: Ordering,
    /// Workers' `done` increment (release edge of the reduction).
    pub finish: Ordering,
    /// Driver's `done` wait (acquire edge of the reduction).
    pub collect: Ordering,
    /// Driver's `sum`/`done` reset (pre-publication, same-thread ordered).
    pub reset: Ordering,
    /// Whether `begin` resets the reduction cells before bumping `round`.
    /// Resetting after publication races the first worker of the round;
    /// kept as a seedable bug for the checker's mutation tests.
    pub reset_before_publish: bool,
}

impl Default for RoundSpec {
    fn default() -> Self {
        RoundSpec {
            publish: Ordering::Release,
            observe: Ordering::Acquire,
            payload: Ordering::Relaxed,
            submit: Ordering::Relaxed,
            finish: Ordering::Release,
            collect: Ordering::Acquire,
            reset: Ordering::Relaxed,
            reset_before_publish: true,
        }
    }
}

/// A message observed by a worker at the top of a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundMsg {
    /// Evaluate the packed operand.
    Op(u64),
    /// Shut down; no more rounds will be published.
    Stop,
}

/// One driver, many workers, one in-flight round at a time.
pub struct RoundChannel<A: Atomics = RealAtomics> {
    round: A::U64,
    op: A::U64,
    stop: A::Bool,
    sum: A::U64,
    done: A::Usize,
    spec: RoundSpec,
}

impl RoundChannel<RealAtomics> {
    /// Production channel with the default (audited) orderings.
    #[must_use]
    pub fn new() -> Self {
        Self::with(&RealAtomics, RoundSpec::default())
    }
}

impl Default for RoundChannel<RealAtomics> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Atomics> RoundChannel<A> {
    /// Builds a channel over `env`'s atomics with explicit orderings.
    pub fn with(env: &A, spec: RoundSpec) -> Self {
        RoundChannel {
            round: env.u64(0, "round.round"),
            op: env.u64(0, "round.op"),
            stop: env.boolean(false, "round.stop"),
            sum: env.u64(0, "round.sum"),
            done: env.usize(0, "round.done"),
            spec,
        }
    }

    /// Driver: publishes a new round evaluating `op`. Must not be called
    /// again before [`RoundChannel::collect`] returns for this round.
    pub fn begin(&self, op: u64) {
        if self.spec.reset_before_publish {
            self.sum.store(0, self.spec.reset);
            self.done.store(0, self.spec.reset);
            self.op.store(op, self.spec.payload);
            self.round.fetch_add(1, self.spec.publish);
        } else {
            self.op.store(op, self.spec.payload);
            self.round.fetch_add(1, self.spec.publish);
            self.sum.store(0, self.spec.reset);
            self.done.store(0, self.spec.reset);
        }
    }

    /// Driver: publishes the shutdown round; workers observe
    /// [`RoundMsg::Stop`] and exit.
    pub fn publish_stop(&self) {
        self.stop.store(true, self.spec.payload);
        self.round.fetch_add(1, self.spec.publish);
    }

    /// Worker: blocks for the next round after `*seen`, advancing it.
    pub fn next(&self, seen: &mut u64) -> RoundMsg {
        let prev = *seen;
        self.round.wait_until(self.spec.observe, |r| r != prev);
        *seen = prev.wrapping_add(1);
        if self.stop.load(self.spec.payload) {
            RoundMsg::Stop
        } else {
            RoundMsg::Op(self.op.load(self.spec.payload))
        }
    }

    /// Worker: deposits this round's partial and announces completion.
    pub fn finish(&self, partial: u64) {
        if partial != 0 {
            self.sum.fetch_add(partial, self.spec.submit);
        }
        self.done.fetch_add(1, self.spec.finish);
    }

    /// Driver: waits for `workers` completions and returns the reduced sum.
    pub fn collect(&self, workers: usize) -> u64 {
        self.done.wait_until(self.spec.collect, |d| d == workers);
        self.sum.load(self.spec.submit)
    }
}
