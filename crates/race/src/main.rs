//! `tempo-race` driver: sweeps the clean protocol models (must enumerate
//! completely with zero violations) and the seeded mutation catalog
//! (every mutation must be detected). Exit code 0 only when both hold.

use tempo_race::scenarios::{mutation_cases, protocol_cases};
use tempo_race::Checker;

fn main() {
    let checker = Checker::default();
    let mut failures = 0usize;

    println!("== protocol sweeps (must be clean and complete) ==");
    for case in protocol_cases() {
        let report = case.run(&checker);
        let status = if report.passed() {
            "ok"
        } else {
            failures += 1;
            "FAIL"
        };
        println!(
            "{status:>4}  {:<28} {} schedules{}",
            case.name,
            report.executions,
            if report.complete { "" } else { " (INCOMPLETE)" }
        );
        if let Some(v) = &report.violation {
            println!("{v}");
        }
    }

    println!("== seeded mutations (must be detected) ==");
    for case in mutation_cases() {
        let report = case.run(&checker);
        let detected = report.violation.is_some();
        let status = if detected {
            "ok"
        } else {
            failures += 1;
            "FAIL"
        };
        let kind = report
            .violation
            .as_ref()
            .map_or_else(|| "NOT DETECTED".to_owned(), |v| format!("{:?}", v.kind));
        println!(
            "{status:>4}  {:<48} {} after {} schedules",
            case.name, kind, report.executions
        );
    }

    if failures > 0 {
        eprintln!("tempo-race: {failures} case(s) failed");
        std::process::exit(1);
    }
    println!("tempo-race: all cases passed");
}
