//! Sense-reversing spin barrier, extracted from the sharded evaluator.
//!
//! `count` tracks arrivals; the last arriver resets it and bumps
//! `generation`, releasing the spinners of this round. The generation
//! bump doubles as the round's publication edge: everything the arriving
//! threads did before `wait()` happens-before everything any thread does
//! after leaving it, because every arrival joins the `count` release
//! sequence (AcqRel RMW) and the winner's release bump carries that
//! accumulated clock to the acquire spinners.

use crate::atomics::{AtomicUsizeT, Atomics, Ordering};
use crate::real::RealAtomics;

/// Memory orderings of the four barrier sites. Production uses
/// [`BarrierSpec::default`]; the checker's mutation tests weaken single
/// fields and assert the protocol breaks observably.
#[derive(Clone, Copy, Debug)]
pub struct BarrierSpec {
    /// Initial generation observation (before arrival).
    pub observe: Ordering,
    /// Arrival `fetch_add` on `count`.
    pub arrive: Ordering,
    /// Winner's `count` reset (protected by the generation edge).
    pub reset: Ordering,
    /// Winner's generation bump (the release edge of the round).
    pub publish: Ordering,
    /// Spinners' generation re-load (the acquire edge of the round).
    pub spin: Ordering,
}

impl Default for BarrierSpec {
    fn default() -> Self {
        BarrierSpec {
            observe: Ordering::Acquire,
            arrive: Ordering::AcqRel,
            reset: Ordering::Relaxed,
            publish: Ordering::Release,
            spin: Ordering::Acquire,
        }
    }
}

/// Reusable spin barrier for `n` participants.
pub struct SpinBarrier<A: Atomics = RealAtomics> {
    n: usize,
    count: A::Usize,
    generation: A::Usize,
    spec: BarrierSpec,
}

impl SpinBarrier<RealAtomics> {
    /// Production barrier with the default (audited) orderings.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with(&RealAtomics, n, BarrierSpec::default())
    }
}

impl<A: Atomics> SpinBarrier<A> {
    /// Builds a barrier over `env`'s atomics with explicit orderings.
    pub fn with(env: &A, n: usize, spec: BarrierSpec) -> Self {
        SpinBarrier {
            n,
            count: env.usize(0, "barrier.count"),
            generation: env.usize(0, "barrier.generation"),
            spec,
        }
    }

    /// Blocks until all `n` participants have called `wait` this round.
    pub fn wait(&self) {
        let gen = self.generation.load(self.spec.observe);
        if self.count.fetch_add(1, self.spec.arrive) + 1 == self.n {
            self.count.store(0, self.spec.reset);
            self.generation.fetch_add(1, self.spec.publish);
        } else {
            self.generation.wait_until(self.spec.spin, |g| g != gen);
        }
    }
}
