//! Production implementation of the [`Atomics`] family: plain
//! `std::sync::atomic` types plus a spin-then-yield blocking wait.
//!
//! Everything is `#[inline]` and monomorphizes to exactly the code the
//! protocols contained before extraction — the abstraction costs nothing
//! on the hot paths (see `benches`/`exp_explore` ablations).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::atomics::{AtomicBoolT, AtomicU64T, AtomicUsizeT, Atomics, MutexT};

/// Spin for short waits, yield to the OS once a wait turns long. Mirrors
/// the backoff the sharded evaluator has always used: barrier waits are
/// normally a few hundred nanoseconds, but an oversubscribed machine
/// needs the scheduler's help to get the straggler running.
#[inline]
pub fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < (1 << 10) {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Zero-sized factory for the production atomics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealAtomics;

/// Production `u64` atomic.
#[derive(Debug, Default)]
pub struct RealU64(AtomicU64);

/// Production `usize` atomic.
#[derive(Debug, Default)]
pub struct RealUsize(AtomicUsize);

/// Production `bool` atomic.
#[derive(Debug, Default)]
pub struct RealBool(AtomicBool);

/// Production mutex: `std::sync::Mutex` with poison recovery, matching
/// the idiom used across the workspace (a panicked holder must not take
/// the whole server down; the protected data is rebuilt or validated by
/// its owner).
#[derive(Debug, Default)]
pub struct RealMutex<T>(Mutex<T>);

impl AtomicU64T for RealU64 {
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }
    #[inline]
    fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order);
    }
    #[inline]
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_add(value, order)
    }
    #[inline]
    fn fetch_or(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_or(value, order)
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, success, failure)
    }
    #[inline]
    fn wait_until<F: FnMut(u64) -> bool>(&self, order: Ordering, mut pred: F) -> u64 {
        let mut spins = 0u32;
        loop {
            let v = self.0.load(order);
            if pred(v) {
                return v;
            }
            backoff(&mut spins);
        }
    }
}

impl AtomicUsizeT for RealUsize {
    #[inline]
    fn load(&self, order: Ordering) -> usize {
        self.0.load(order)
    }
    #[inline]
    fn store(&self, value: usize, order: Ordering) {
        self.0.store(value, order);
    }
    #[inline]
    fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.0.fetch_add(value, order)
    }
    #[inline]
    fn wait_until<F: FnMut(usize) -> bool>(&self, order: Ordering, mut pred: F) -> usize {
        let mut spins = 0u32;
        loop {
            let v = self.0.load(order);
            if pred(v) {
                return v;
            }
            backoff(&mut spins);
        }
    }
}

impl AtomicBoolT for RealBool {
    #[inline]
    fn load(&self, order: Ordering) -> bool {
        self.0.load(order)
    }
    #[inline]
    fn store(&self, value: bool, order: Ordering) {
        self.0.store(value, order);
    }
}

impl<T: Send> MutexT<T> for RealMutex<T> {
    type Guard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;
    #[inline]
    fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Atomics for RealAtomics {
    type U64 = RealU64;
    type Usize = RealUsize;
    type Bool = RealBool;
    type Mutex<T: Send> = RealMutex<T>;
    #[inline]
    fn u64(&self, init: u64, _name: &'static str) -> RealU64 {
        RealU64(AtomicU64::new(init))
    }
    #[inline]
    fn usize(&self, init: usize, _name: &'static str) -> RealUsize {
        RealUsize(AtomicUsize::new(init))
    }
    #[inline]
    fn boolean(&self, init: bool, _name: &'static str) -> RealBool {
        RealBool(AtomicBool::new(init))
    }
    #[inline]
    fn mutex<T: Send>(&self, init: T, _name: &'static str) -> RealMutex<T> {
        RealMutex(Mutex::new(init))
    }
}
