//! Bounded exhaustive interleaving checker.
//!
//! A scenario is run many times, once per distinct thread interleaving.
//! Virtual threads are real OS threads (reused across executions through
//! a small worker pool) coordinated turn-by-turn: every operation on a
//! [`VirtualAtomics`] atomic or mutex is a *scheduling point* — the
//! thread announces the operation, parks, and performs it only when the
//! controller hands it the baton. The controller enumerates schedules by
//! depth-first search over the choices at each scheduling point, pruned
//! with sleep sets (two adjacent independent steps commute, so only one
//! order is explored).
//!
//! Correctness conditions checked on every explored schedule:
//!
//! * **data-race freedom** — non-atomic [`VCell`] accesses are validated
//!   with FastTrack-style vector clocks. Happens-before edges come from
//!   acquire loads reading release stores (with release sequences: an RMW
//!   continues the sequence, a relaxed store breaks it), mutex unlock →
//!   lock pairs, spawn, and join-at-exit. A weakened ordering in a
//!   protocol shows up here even though the exploration itself is
//!   sequentially consistent.
//! * **deadlock / lost-wakeup freedom** — a state where every unfinished
//!   thread is parked on a condition nobody can satisfy is reported with
//!   the list of waiting operations.
//! * **scenario assertions** — thread bodies and the scenario's `finally`
//!   closure may `assert!`; a panic on any schedule is a violation and
//!   the offending schedule is reported.

use std::cell::{Cell, UnsafeCell};
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use crate::atomics::{acquires, releases, AtomicBoolT, AtomicU64T, AtomicUsizeT, Atomics, MutexT};

/// Virtual thread id of the controller (setup / `finally` run here).
const ROOT: usize = 0;

type Clock = Vec<u64>;

fn join_clock(into: &mut Clock, other: &[u64]) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, &b) in into.iter_mut().zip(other) {
        if *a < b {
            *a = b;
        }
    }
}

/// Whether the event `(owner, stamp)` happened-before a thread with `clock`.
fn hb(owner: usize, stamp: u64, clock: &[u64]) -> bool {
    clock.get(owner).copied().unwrap_or(0) >= stamp
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OpKind {
    Read,
    Write,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Site {
    Atomic(usize),
    Mutex(usize),
}

/// The operation a parked thread will perform when scheduled; the unit of
/// the independence relation used by sleep-set pruning.
#[derive(Clone, Copy, Debug)]
struct PendingOp {
    site: Site,
    kind: OpKind,
    name: &'static str,
}

/// Two pending operations are dependent when they touch the same site and
/// at least one mutates it (mutex lock/unlock always mutates).
fn dependent(a: &PendingOp, b: &PendingOp) -> bool {
    a.site == b.site && (a.kind == OpKind::Write || b.kind == OpKind::Write)
}

/// Why a parked thread is not currently schedulable.
#[derive(Clone, Copy, Debug)]
enum Cond {
    /// Schedulable now.
    None,
    /// Re-loads only after the location has been written again.
    LocChanged { loc: usize, version: u64 },
    /// Acquires only once the mutex is free.
    MutexFree { m: usize },
}

#[derive(Debug)]
enum Status {
    /// Job dispatched; the thread has not yet reached its first operation.
    Spawning,
    /// Parked at a scheduling point, waiting for the baton.
    Waiting { op: PendingOp, cond: Cond },
    /// Holds or recently returned the baton; executing scenario code.
    Running,
    /// Body returned (or unwound).
    Finished,
}

struct LocState {
    value: u64,
    /// Clock a subsequent acquire load synchronizes with, if the latest
    /// write is (part of) a release sequence; `None` after a relaxed
    /// store, which breaks the sequence.
    release: Option<Clock>,
    version: u64,
}

struct MutexState {
    held_by: Option<usize>,
    /// Clock of the last unlock; joined by the next lock.
    clock: Clock,
}

struct CellState {
    name: &'static str,
    last_write: (usize, u64),
    /// Per-thread stamp of the latest read since the last write.
    reads: Vec<(usize, u64)>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Baton {
    Controller,
    Thread(usize),
}

/// The kind of property a reported violation breaks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// Conflicting non-atomic accesses without a happens-before edge.
    DataRace,
    /// Every unfinished thread parked with no possible waker.
    Deadlock,
    /// A thread body panicked (failed `assert!`, poisoned invariant, …).
    ThreadPanic,
    /// The scenario's `finally` check panicked after a clean run.
    FinalCheck,
    /// The step bound was exceeded (runaway schedule).
    BoundExceeded,
}

/// One counterexample: what broke and on which schedule.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Property class.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub message: String,
    /// The schedule as executed: one `thread:operation` entry per step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:?}: {}", self.kind, self.message)?;
        writeln!(f, "  schedule ({} steps):", self.trace.len())?;
        for step in &self.trace {
            writeln!(f, "    {step}")?;
        }
        Ok(())
    }
}

struct Central {
    locs: Vec<LocState>,
    mutexes: Vec<MutexState>,
    cells: Vec<CellState>,
    /// Index 0 is the controller/root; virtual threads are 1-based.
    threads: Vec<ThreadStateEntry>,
    baton: Baton,
    abort: bool,
    violation: Option<Violation>,
    trace: Vec<String>,
    steps: u64,
}

struct ThreadStateEntry {
    status: Status,
    clock: Clock,
}

impl Central {
    fn record_violation(&mut self, kind: ViolationKind, message: String) {
        if self.violation.is_none() {
            self.violation = Some(Violation {
                kind,
                message,
                trace: self.trace.clone(),
            });
        }
        self.abort = true;
    }
}

/// One execution's shared state; every virtual atomic holds an `Arc` to it.
pub struct ExecState {
    central: Mutex<Central>,
    cv: Condvar,
}

/// Panic payload used to unwind virtual threads when an execution is
/// cancelled (violation found, redundant schedule, teardown).
struct Aborted;

fn abort_now() -> ! {
    std::panic::panic_any(Aborted);
}

/// Depth of nested "expected panic" regions: while positive, the process
/// panic hook stays silent (the unwind is caught and reported through
/// [`Report`], so the default backtrace spew is pure noise).
static QUIET_PANICS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

struct QuietPanics;

impl QuietPanics {
    fn enter() -> Self {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if QUIET_PANICS.load(Ordering::Relaxed) == 0 {
                    prev(info);
                }
            }));
        });
        QUIET_PANICS.fetch_add(1, Ordering::Relaxed);
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        QUIET_PANICS.fetch_sub(1, Ordering::Relaxed);
    }
}

thread_local! {
    static TID: Cell<usize> = const { Cell::new(ROOT) };
}

impl ExecState {
    fn new() -> Self {
        ExecState {
            central: Mutex::new(Central {
                locs: Vec::new(),
                mutexes: Vec::new(),
                cells: Vec::new(),
                threads: vec![ThreadStateEntry {
                    status: Status::Running,
                    clock: vec![1],
                }],
                baton: Baton::Controller,
                abort: false,
                violation: None,
                trace: Vec::new(),
                steps: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Central> {
        self.central.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes one scheduled turn: announce `op`, park until the controller
    /// hands over the baton, apply `f` to the central state, return the
    /// baton. Every visible effect of a virtual operation happens inside
    /// `f`, under the central lock, so executions are fully serialized.
    fn turn<R>(&self, op: PendingOp, cond: Cond, f: impl FnOnce(&mut Central, usize) -> R) -> R {
        let tid = TID.with(Cell::get);
        if tid == ROOT {
            // Setup / `finally` run on the controller while no virtual
            // thread is active: apply the operation directly, no baton.
            let mut c = self.lock();
            c.threads[ROOT].clock[ROOT] += 1;
            return f(&mut c, ROOT);
        }
        let mut c = self.lock();
        if c.abort {
            drop(c);
            abort_now();
        }
        c.threads[tid].status = Status::Waiting { op, cond };
        self.cv.notify_all();
        loop {
            if c.abort {
                drop(c);
                abort_now();
            }
            if c.baton == Baton::Thread(tid) {
                break;
            }
            c = self.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
        }
        c.threads[tid].status = Status::Running;
        c.steps += 1;
        c.trace.push(format!("t{tid}:{}", op.name));
        c.threads[tid].clock[tid] += 1;
        let r = f(&mut c, tid);
        c.baton = Baton::Controller;
        self.cv.notify_all();
        r
    }

    fn atomic_load(
        &self,
        loc: usize,
        order: Ordering,
        cond: Cond,
        name: &'static str,
    ) -> (u64, u64) {
        self.turn(
            PendingOp {
                site: Site::Atomic(loc),
                kind: OpKind::Read,
                name,
            },
            cond,
            |c, tid| {
                if acquires(order) {
                    if let Some(rel) = c.locs[loc].release.clone() {
                        join_clock(&mut c.threads[tid].clock, &rel);
                    }
                }
                (c.locs[loc].value, c.locs[loc].version)
            },
        )
    }

    fn atomic_store(&self, loc: usize, value: u64, order: Ordering, name: &'static str) {
        self.turn(
            PendingOp {
                site: Site::Atomic(loc),
                kind: OpKind::Write,
                name,
            },
            Cond::None,
            |c, tid| {
                let release = releases(order).then(|| c.threads[tid].clock.clone());
                let l = &mut c.locs[loc];
                l.value = value;
                l.version += 1;
                // A plain store replaces the head of the release sequence:
                // relaxed breaks it, release restarts it at this thread.
                l.release = release;
            },
        )
    }

    fn atomic_rmw(
        &self,
        loc: usize,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
        name: &'static str,
    ) -> u64 {
        self.turn(
            PendingOp {
                site: Site::Atomic(loc),
                kind: OpKind::Write,
                name,
            },
            Cond::None,
            |c, tid| {
                if acquires(order) {
                    if let Some(rel) = c.locs[loc].release.clone() {
                        join_clock(&mut c.threads[tid].clock, &rel);
                    }
                }
                let thread_clock = c.threads[tid].clock.clone();
                let l = &mut c.locs[loc];
                let old = l.value;
                l.value = f(old);
                l.version += 1;
                // An RMW always continues an existing release sequence; a
                // release RMW additionally joins its own clock into it.
                if releases(order) {
                    let mut rel = l.release.take().unwrap_or_default();
                    join_clock(&mut rel, &thread_clock);
                    l.release = Some(rel);
                }
                old
            },
        )
    }

    fn atomic_cas(
        &self,
        loc: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        name: &'static str,
    ) -> Result<u64, u64> {
        self.turn(
            PendingOp {
                site: Site::Atomic(loc),
                kind: OpKind::Write,
                name,
            },
            Cond::None,
            |c, tid| {
                let old = c.locs[loc].value;
                let order = if old == current { success } else { failure };
                if acquires(order) {
                    if let Some(rel) = c.locs[loc].release.clone() {
                        join_clock(&mut c.threads[tid].clock, &rel);
                    }
                }
                if old != current {
                    return Err(old);
                }
                let thread_clock = c.threads[tid].clock.clone();
                let l = &mut c.locs[loc];
                l.value = new;
                l.version += 1;
                if releases(success) {
                    let mut rel = l.release.take().unwrap_or_default();
                    join_clock(&mut rel, &thread_clock);
                    l.release = Some(rel);
                }
                Ok(old)
            },
        )
    }

    fn wait_until(
        &self,
        loc: usize,
        order: Ordering,
        mut pred: impl FnMut(u64) -> bool,
        name: &'static str,
    ) -> u64 {
        let mut cond = Cond::None;
        loop {
            let (v, version) = self.atomic_load(loc, order, cond, name);
            if pred(v) {
                return v;
            }
            cond = Cond::LocChanged { loc, version };
        }
    }

    fn mutex_lock(&self, m: usize, name: &'static str) {
        self.turn(
            PendingOp {
                site: Site::Mutex(m),
                kind: OpKind::Write,
                name,
            },
            Cond::MutexFree { m },
            |c, tid| {
                debug_assert!(c.mutexes[m].held_by.is_none());
                c.mutexes[m].held_by = Some(tid);
                let rel = c.mutexes[m].clock.clone();
                join_clock(&mut c.threads[tid].clock, &rel);
            },
        );
    }

    fn mutex_unlock(&self, m: usize, name: &'static str) {
        self.turn(
            PendingOp {
                site: Site::Mutex(m),
                kind: OpKind::Write,
                name,
            },
            Cond::None,
            |c, tid| {
                debug_assert_eq!(c.mutexes[m].held_by, Some(tid));
                c.mutexes[m].held_by = None;
                c.mutexes[m].clock = c.threads[tid].clock.clone();
            },
        );
    }

    /// Non-atomic access bookkeeping. Cell accesses are not scheduling
    /// points (they create no happens-before edges), but they are checked
    /// against the vector clocks: a pair of conflicting accesses with
    /// neither ordered before the other is a data race regardless of the
    /// interleaving that exposed it.
    fn cell_access(&self, id: usize, kind: OpKind) {
        let tid = TID.with(Cell::get);
        let mut c = self.lock();
        if c.abort {
            drop(c);
            if std::thread::panicking() {
                return;
            }
            abort_now();
        }
        c.threads[tid].clock[tid] += 1;
        let clock = c.threads[tid].clock.clone();
        let stamp = clock[tid];
        let cell = &mut c.cells[id];
        let (wt, ws) = cell.last_write;
        let name = cell.name;
        let mut race: Option<String> = None;
        if wt != tid && !hb(wt, ws, &clock) {
            race = Some(format!(
                "{} of non-atomic cell `{name}` by t{tid} races with write by t{wt}",
                if kind == OpKind::Write {
                    "write"
                } else {
                    "read"
                },
            ));
        }
        if kind == OpKind::Write && race.is_none() {
            for &(rt, rs) in &cell.reads {
                if rt != tid && !hb(rt, rs, &clock) {
                    race = Some(format!(
                        "write of non-atomic cell `{name}` by t{tid} races with read by t{rt}",
                    ));
                    break;
                }
            }
        }
        if race.is_none() {
            match kind {
                OpKind::Write => {
                    cell.last_write = (tid, stamp);
                    cell.reads.clear();
                }
                OpKind::Read => {
                    if let Some(e) = cell.reads.iter_mut().find(|(rt, _)| *rt == tid) {
                        e.1 = stamp;
                    } else {
                        cell.reads.push((tid, stamp));
                    }
                }
            }
        }
        if let Some(msg) = race {
            c.record_violation(ViolationKind::DataRace, msg);
            self.cv.notify_all();
            drop(c);
            abort_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Virtual atomic handles
// ---------------------------------------------------------------------------

/// Checker-instrumented implementation of the [`Atomics`] family.
///
/// Create one per execution via [`Checker::check`]'s setup closure; all
/// atomics built from it share that execution's scheduler state.
#[derive(Clone)]
pub struct VirtualAtomics {
    exec: Arc<ExecState>,
}

/// Virtual `u64` atomic.
pub struct VU64 {
    exec: Arc<ExecState>,
    loc: usize,
    name: &'static str,
}

/// Virtual `usize` atomic.
pub struct VUsize(VU64);

/// Virtual `bool` atomic.
pub struct VBool(VU64);

impl AtomicU64T for VU64 {
    fn load(&self, order: Ordering) -> u64 {
        self.exec
            .atomic_load(self.loc, order, Cond::None, self.name)
            .0
    }
    fn store(&self, value: u64, order: Ordering) {
        self.exec.atomic_store(self.loc, value, order, self.name);
    }
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.exec
            .atomic_rmw(self.loc, order, |v| v.wrapping_add(value), self.name)
    }
    fn fetch_or(&self, value: u64, order: Ordering) -> u64 {
        self.exec
            .atomic_rmw(self.loc, order, |v| v | value, self.name)
    }
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.exec
            .atomic_cas(self.loc, current, new, success, failure, self.name)
    }
    fn wait_until<F: FnMut(u64) -> bool>(&self, order: Ordering, pred: F) -> u64 {
        self.exec.wait_until(self.loc, order, pred, self.name)
    }
}

impl AtomicUsizeT for VUsize {
    fn load(&self, order: Ordering) -> usize {
        self.0.load(order) as usize
    }
    fn store(&self, value: usize, order: Ordering) {
        self.0.store(value as u64, order);
    }
    fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.0.fetch_add(value as u64, order) as usize
    }
    fn wait_until<F: FnMut(usize) -> bool>(&self, order: Ordering, mut pred: F) -> usize {
        self.0.wait_until(order, |v| pred(v as usize)) as usize
    }
}

impl AtomicBoolT for VBool {
    fn load(&self, order: Ordering) -> bool {
        self.0.load(order) != 0
    }
    fn store(&self, value: bool, order: Ordering) {
        self.0.store(u64::from(value), order);
    }
}

/// Virtual mutex; mutual exclusion is enforced by the scheduler (a lock
/// operation is only schedulable while the mutex is free), which makes
/// the interior `UnsafeCell` access sound: at most one thread runs at a
/// time and at most one holds the lock.
pub struct VMutex<T> {
    exec: Arc<ExecState>,
    id: usize,
    name: &'static str,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is confined to lock holders, and the turn
// scheduler serializes all virtual threads.
unsafe impl<T: Send> Send for VMutex<T> {}
unsafe impl<T: Send> Sync for VMutex<T> {}

/// RAII guard for [`VMutex`]; unlocking is a scheduling point.
pub struct VMutexGuard<'a, T> {
    m: &'a VMutex<T>,
}

impl<T> std::ops::Deref for VMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence implies the virtual lock is held.
        unsafe { &*self.m.data.get() }
    }
}

impl<T> std::ops::DerefMut for VMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence implies the virtual lock is held.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for VMutexGuard<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Unwinding through an abort: the execution is over, do not
            // take another turn (it would never be scheduled).
            return;
        }
        self.m.exec.mutex_unlock(self.m.id, self.m.name);
    }
}

impl<T: Send> MutexT<T> for VMutex<T> {
    type Guard<'a>
        = VMutexGuard<'a, T>
    where
        T: 'a;
    fn lock(&self) -> VMutexGuard<'_, T> {
        self.exec.mutex_lock(self.id, self.name);
        VMutexGuard { m: self }
    }
}

impl Atomics for VirtualAtomics {
    type U64 = VU64;
    type Usize = VUsize;
    type Bool = VBool;
    type Mutex<T: Send> = VMutex<T>;
    fn u64(&self, init: u64, name: &'static str) -> VU64 {
        let loc = self.new_loc(init, name);
        VU64 {
            exec: Arc::clone(&self.exec),
            loc,
            name,
        }
    }
    fn usize(&self, init: usize, name: &'static str) -> VUsize {
        VUsize(self.u64(init as u64, name))
    }
    fn boolean(&self, init: bool, name: &'static str) -> VBool {
        VBool(self.u64(u64::from(init), name))
    }
    fn mutex<T: Send>(&self, init: T, name: &'static str) -> VMutex<T> {
        let mut c = self.exec.lock();
        let id = c.mutexes.len();
        c.mutexes.push(MutexState {
            held_by: None,
            clock: Vec::new(),
        });
        VMutex {
            exec: Arc::clone(&self.exec),
            id,
            name,
            data: UnsafeCell::new(init),
        }
    }
}

impl VirtualAtomics {
    fn new_loc(&self, init: u64, _name: &'static str) -> usize {
        let mut c = self.exec.lock();
        let loc = c.locs.len();
        c.locs.push(LocState {
            value: init,
            release: None,
            version: 0,
        });
        loc
    }

    /// Creates a checked non-atomic cell (models plain shared data whose
    /// safety rests on the protocol's happens-before edges).
    pub fn cell<T>(&self, init: T, name: &'static str) -> VCell<T> {
        let mut c = self.exec.lock();
        let id = c.cells.len();
        let stamp = c.threads[ROOT].clock[ROOT];
        c.cells.push(CellState {
            name,
            last_write: (ROOT, stamp),
            reads: Vec::new(),
        });
        VCell {
            exec: Arc::clone(&self.exec),
            id,
            data: UnsafeCell::new(init),
            _marker: PhantomData,
        }
    }
}

/// A non-atomic shared cell whose accesses are race-checked with vector
/// clocks. Reads and writes are *not* scheduling points.
pub struct VCell<T> {
    exec: Arc<ExecState>,
    id: usize,
    data: UnsafeCell<T>,
    _marker: PhantomData<T>,
}

// SAFETY: the turn scheduler serializes all virtual threads, so the
// UnsafeCell is never accessed concurrently; ordering bugs are reported
// via the clock check instead of being undefined behavior.
unsafe impl<T: Send> Send for VCell<T> {}
unsafe impl<T: Send> Sync for VCell<T> {}

impl<T: Copy> VCell<T> {
    /// Race-checked read.
    pub fn read(&self) -> T {
        self.exec.cell_access(self.id, OpKind::Read);
        // SAFETY: threads are serialized by the scheduler.
        unsafe { *self.data.get() }
    }
}

impl<T> VCell<T> {
    /// Race-checked write.
    pub fn write(&self, value: T) {
        self.exec.cell_access(self.id, OpKind::Write);
        // SAFETY: threads are serialized by the scheduler.
        unsafe { *self.data.get() = value };
    }
}

// ---------------------------------------------------------------------------
// Scenario + checker driver
// ---------------------------------------------------------------------------

/// One concurrent test case: thread bodies plus an optional post-hoc
/// check run after all threads finished on a clean schedule.
pub struct Scenario {
    /// Thread bodies; thread `i` runs as virtual thread `i + 1`.
    pub threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Final consistency check (runs on the controller, sees all effects).
    pub finally: Option<Box<dyn FnOnce()>>,
}

/// DFS frame: one scheduling decision and the alternatives still to try.
struct Frame {
    enabled: Vec<usize>,
    ops: BTreeMap<usize, PendingOp>,
    sleep: BTreeMap<usize, PendingOp>,
    explored: BTreeSet<usize>,
    chosen: usize,
}

enum ExecEnd {
    Completed,
    SleepBlocked,
    Violated,
}

/// Result of checking one scenario.
#[derive(Debug)]
pub struct Report {
    /// Scenario name.
    pub name: String,
    /// Number of schedules executed (including sleep-set-blocked stubs).
    pub executions: u64,
    /// True when the schedule space was fully enumerated within bounds.
    pub complete: bool,
    /// First violation found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// True when exploration finished with no violation.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.complete && self.violation.is_none()
    }
}

type Job = Box<dyn FnOnce() + Send>;

struct PoolWorker {
    tx: Sender<Job>,
    done_rx: Receiver<()>,
    handle: Option<JoinHandle<()>>,
}

/// Reusable OS threads hosting the virtual threads; spawning once per
/// checker (not per execution) keeps exhaustive runs fast.
struct Pool {
    workers: Vec<PoolWorker>,
}

impl Pool {
    fn new() -> Self {
        Pool {
            workers: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (tx, rx) = channel::<Job>();
            let (done_tx, done_rx) = channel::<()>();
            let handle = std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                    if done_tx.send(()).is_err() {
                        break;
                    }
                }
            });
            self.workers.push(PoolWorker {
                tx,
                done_rx,
                handle: Some(handle),
            });
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Close the job channel so the worker loop exits.
            let (dead_tx, _) = channel::<Job>();
            let _ = std::mem::replace(&mut w.tx, dead_tx);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Bounded exhaustive schedule explorer.
pub struct Checker {
    /// Upper bound on executed schedules (default 1,000,000).
    pub max_executions: u64,
    /// Upper bound on steps within one execution (default 100,000).
    pub max_steps: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            max_executions: 1_000_000,
            max_steps: 100_000,
        }
    }
}

impl Checker {
    /// Explores every interleaving of the scenario built by `setup`.
    ///
    /// `setup` runs once per execution with a fresh [`VirtualAtomics`]
    /// environment and must deterministically rebuild the same scenario;
    /// the DFS replays schedule prefixes, so any nondeterminism in setup
    /// would desynchronize the search.
    pub fn check<S>(&self, name: &str, setup: S) -> Report
    where
        S: Fn(&VirtualAtomics) -> Scenario,
    {
        let mut pool = Pool::new();
        let mut stack: Vec<Frame> = Vec::new();
        let mut executions = 0u64;
        let mut complete = true;
        loop {
            executions += 1;
            let (end, violation) = self.run_one(&setup, &mut stack, &mut pool);
            if let Some(v) = violation {
                return Report {
                    name: name.to_owned(),
                    executions,
                    complete: false,
                    violation: Some(v),
                };
            }
            debug_assert!(!matches!(end, ExecEnd::Violated));
            if executions >= self.max_executions {
                complete = false;
                break;
            }
            if !advance(&mut stack) {
                break;
            }
        }
        Report {
            name: name.to_owned(),
            executions,
            complete,
            violation: None,
        }
    }

    fn run_one<S>(
        &self,
        setup: &S,
        stack: &mut Vec<Frame>,
        pool: &mut Pool,
    ) -> (ExecEnd, Option<Violation>)
    where
        S: Fn(&VirtualAtomics) -> Scenario,
    {
        let exec = Arc::new(ExecState::new());
        let env = VirtualAtomics {
            exec: Arc::clone(&exec),
        };
        let scenario = setup(&env);
        let n = scenario.threads.len();
        pool.ensure(n);
        {
            let mut c = exec.lock();
            let root_clock = c.threads[ROOT].clock.clone();
            for t in 1..=n {
                let mut clock = vec![0; n + 1];
                join_clock(&mut clock, &root_clock);
                clock[t] = 1;
                c.threads.push(ThreadStateEntry {
                    status: Status::Spawning,
                    clock,
                });
            }
            c.threads[ROOT].clock.resize(n + 1, 0);
        }
        for (i, body) in scenario.threads.into_iter().enumerate() {
            let vtid = i + 1;
            let exec = Arc::clone(&exec);
            let job: Job = Box::new(move || {
                TID.with(|t| t.set(vtid));
                let quiet = QuietPanics::enter();
                let result = catch_unwind(AssertUnwindSafe(body));
                drop(quiet);
                let mut c = exec.lock();
                if let Err(payload) = result {
                    if !payload.is::<Aborted>() {
                        let msg = panic_message(payload.as_ref());
                        c.record_violation(
                            ViolationKind::ThreadPanic,
                            format!("virtual thread t{vtid} panicked: {msg}"),
                        );
                    }
                }
                c.threads[vtid].status = Status::Finished;
                exec.cv.notify_all();
            });
            // The worker loop only dies if the process is exiting.
            let _ = pool.workers[i].tx.send(job);
        }

        let mut sleep: BTreeMap<usize, PendingOp> = BTreeMap::new();
        let mut depth = 0usize;
        let end = loop {
            let mut c = exec.lock();
            loop {
                if c.baton == Baton::Controller && quiescent(&c) {
                    break;
                }
                c = exec.cv.wait(c).unwrap_or_else(PoisonError::into_inner);
            }
            if c.violation.is_some() {
                break ExecEnd::Violated;
            }
            if all_finished(&c) {
                break ExecEnd::Completed;
            }
            if c.steps >= self.max_steps {
                c.record_violation(
                    ViolationKind::BoundExceeded,
                    format!("execution exceeded {} steps", self.max_steps),
                );
                break ExecEnd::Violated;
            }
            let mut enabled: Vec<usize> = Vec::new();
            let mut ops: BTreeMap<usize, PendingOp> = BTreeMap::new();
            for (tid, ts) in c.threads.iter().enumerate().skip(1) {
                if let Status::Waiting { op, cond } = &ts.status {
                    ops.insert(tid, *op);
                    let ready = match cond {
                        Cond::None => true,
                        Cond::LocChanged { loc, version } => c.locs[*loc].version != *version,
                        Cond::MutexFree { m } => c.mutexes[*m].held_by.is_none(),
                    };
                    if ready {
                        enabled.push(tid);
                    }
                }
            }
            if enabled.is_empty() {
                let waiting: Vec<String> = ops
                    .iter()
                    .map(|(tid, op)| format!("t{tid} waiting on {}", op.name))
                    .collect();
                c.record_violation(
                    ViolationKind::Deadlock,
                    format!("deadlock / lost wakeup: {}", waiting.join("; ")),
                );
                break ExecEnd::Violated;
            }
            let chosen = if depth < stack.len() {
                sleep = stack[depth].sleep.clone();
                debug_assert!(
                    enabled.contains(&stack[depth].chosen),
                    "replay desync: scenario setup must be deterministic"
                );
                stack[depth].chosen
            } else {
                match enabled.iter().copied().find(|t| !sleep.contains_key(t)) {
                    Some(t) => {
                        stack.push(Frame {
                            enabled: enabled.clone(),
                            ops: ops.clone(),
                            sleep: sleep.clone(),
                            explored: BTreeSet::from([t]),
                            chosen: t,
                        });
                        t
                    }
                    None => break ExecEnd::SleepBlocked,
                }
            };
            let chosen_op = ops[&chosen];
            c.baton = Baton::Thread(chosen);
            exec.cv.notify_all();
            drop(c);
            sleep.retain(|_, op| !dependent(op, &chosen_op));
            depth += 1;
        };

        // Tear down: wake everything, let parked threads unwind, drain the
        // pool so workers are reusable, then run the final check.
        let violation = {
            let mut c = exec.lock();
            if !matches!(end, ExecEnd::Completed) {
                c.abort = true;
            }
            exec.cv.notify_all();
            c.violation.clone()
        };
        for i in 0..n {
            // Worker signals completion of each job exactly once.
            let _ = pool.workers[i].done_rx.recv();
        }
        let violation = violation.or_else(|| exec.lock().violation.clone());
        if violation.is_none() {
            if let (ExecEnd::Completed, Some(finally)) = (&end, scenario.finally) {
                {
                    let mut c = exec.lock();
                    let joined: Clock = c.threads.iter().skip(1).fold(Vec::new(), |mut acc, t| {
                        join_clock(&mut acc, &t.clock);
                        acc
                    });
                    join_clock(&mut c.threads[ROOT].clock, &joined);
                    c.threads[ROOT].clock[ROOT] += 1;
                }
                let quiet = QuietPanics::enter();
                let outcome = catch_unwind(AssertUnwindSafe(finally));
                drop(quiet);
                if let Err(payload) = outcome {
                    let msg = panic_message(payload.as_ref());
                    let mut c = exec.lock();
                    c.record_violation(
                        ViolationKind::FinalCheck,
                        format!("final check failed: {msg}"),
                    );
                    return (ExecEnd::Violated, c.violation.clone());
                }
            }
        }
        (end, violation)
    }
}

fn quiescent(c: &Central) -> bool {
    c.threads
        .iter()
        .skip(1)
        .all(|t| matches!(t.status, Status::Waiting { .. } | Status::Finished))
}

fn all_finished(c: &Central) -> bool {
    c.threads
        .iter()
        .skip(1)
        .all(|t| matches!(t.status, Status::Finished))
}

/// Backtracks to the deepest frame with an unexplored, non-sleeping
/// alternative; returns false when the whole tree is exhausted.
fn advance(stack: &mut Vec<Frame>) -> bool {
    while let Some(top) = stack.last_mut() {
        let old = top.chosen;
        if let Some(op) = top.ops.get(&old).copied() {
            top.sleep.insert(old, op);
        }
        let next = top
            .enabled
            .iter()
            .copied()
            .find(|t| !top.explored.contains(t) && !top.sleep.contains_key(t));
        if let Some(t) = next {
            top.explored.insert(t);
            top.chosen = t;
            return true;
        }
        stack.pop();
    }
    false
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
