//! The `Atomics` abstraction the shared protocols are written against.
//!
//! Production instantiates the protocols with [`crate::RealAtomics`]
//! (plain `std::sync::atomic` types, zero-cost after monomorphization);
//! the checker instantiates them with [`crate::VirtualAtomics`], whose
//! every operation is a scheduling point with vector-clock bookkeeping.
//!
//! Orderings are passed explicitly at every call site — protocol structs
//! carry them in a `*Spec` so the mutation self-tests can weaken a single
//! site and prove the checker notices.

use std::ops::DerefMut;

pub use std::sync::atomic::Ordering;

/// A `u64` atomic cell.
pub trait AtomicU64T: Send + Sync {
    /// Atomic load.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, value: u64, order: Ordering);
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, value: u64, order: Ordering) -> u64;
    /// Atomic bitwise or; returns the previous value.
    fn fetch_or(&self, value: u64, order: Ordering) -> u64;
    /// Atomic compare-and-swap; `Ok(previous)` on success.
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
    /// Blocks (spinning in production, parking under the checker) until
    /// `pred` holds for a value loaded with `order`; returns that value.
    ///
    /// This is the one primitive the checker cannot express as a plain
    /// load: a raw spin loop under an exhaustive scheduler is a livelock,
    /// so the virtual implementation parks the thread and re-loads only
    /// after the location has actually been written.
    fn wait_until<F: FnMut(u64) -> bool>(&self, order: Ordering, pred: F) -> u64;
}

/// A `usize` atomic cell (counter-shaped subset).
pub trait AtomicUsizeT: Send + Sync {
    /// Atomic load.
    fn load(&self, order: Ordering) -> usize;
    /// Atomic store.
    fn store(&self, value: usize, order: Ordering);
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, value: usize, order: Ordering) -> usize;
    /// Blocking predicate wait; see [`AtomicU64T::wait_until`].
    fn wait_until<F: FnMut(usize) -> bool>(&self, order: Ordering, pred: F) -> usize;
}

/// A `bool` atomic cell.
pub trait AtomicBoolT: Send + Sync {
    /// Atomic load.
    fn load(&self, order: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, value: bool, order: Ordering);
}

/// A mutual-exclusion lock over `T`.
pub trait MutexT<T>: Send + Sync {
    /// The RAII guard type.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// Acquires the lock (recovering from poison in production; the
    /// checker models a poisoned lock as a reported thread panic).
    fn lock(&self) -> Self::Guard<'_>;
}

/// Factory for the atomic family a protocol is instantiated over.
///
/// `name` parameters label locations in checker diagnostics and are
/// ignored by the production implementation.
pub trait Atomics: Send + Sync + Sized {
    /// `u64` atomic type.
    type U64: AtomicU64T;
    /// `usize` atomic type.
    type Usize: AtomicUsizeT;
    /// `bool` atomic type.
    type Bool: AtomicBoolT;
    /// Mutex type.
    type Mutex<T: Send>: MutexT<T>;
    /// Creates a `u64` atomic.
    fn u64(&self, init: u64, name: &'static str) -> Self::U64;
    /// Creates a `usize` atomic.
    fn usize(&self, init: usize, name: &'static str) -> Self::Usize;
    /// Creates a `bool` atomic.
    fn boolean(&self, init: bool, name: &'static str) -> Self::Bool;
    /// Creates a mutex.
    fn mutex<T: Send>(&self, init: T, name: &'static str) -> Self::Mutex<T>;
}

/// Whether `order` has acquire semantics on a load/RMW.
#[must_use]
pub fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// Whether `order` has release semantics on a store/RMW.
#[must_use]
pub fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}
