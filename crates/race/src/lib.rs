//! `tempo-race`: exhaustive interleaving checker for GraphTempo's
//! lock-free protocols.
//!
//! The workspace's concurrent core — the sense-reversing [`SpinBarrier`]
//! and the [`RoundChannel`] sum/done handshake driving sharded
//! exploration, and the [`EpochMap`] CAS + epoch publication behind the
//! server's snapshot registry — lives here, written once against the
//! [`Atomics`] abstraction:
//!
//! * production code instantiates the protocols with [`RealAtomics`]
//!   (plain `std::sync::atomic`, fully inlined — the generics cost
//!   nothing after monomorphization);
//! * the checker instantiates them with [`VirtualAtomics`] and runs a
//!   bounded exhaustive DFS over every thread interleaving (sleep-set
//!   pruned), validating happens-before with vector clocks: no data
//!   race on the protected plain data, no deadlock or lost wakeup, no
//!   torn `(value, epoch)` read, and linearizable CAS outcomes.
//!
//! Run `cargo run -p tempo-race --release` for the full sweep: the clean
//! protocols must enumerate completely with zero violations, and every
//! seeded mutation (e.g. the barrier's generation bump downgraded to
//! `Relaxed`) must be reported. The same catalog runs in `cargo test`
//! via `tests/protocols.rs`.

#![warn(missing_docs)]

pub mod atomics;
pub mod barrier;
pub mod check;
pub mod epoch;
pub mod real;
pub mod round;
pub mod scenarios;

pub use atomics::{AtomicBoolT, AtomicU64T, AtomicUsizeT, Atomics, MutexT, Ordering};
pub use barrier::{BarrierSpec, SpinBarrier};
pub use check::{Checker, Report, Scenario, VCell, Violation, ViolationKind, VirtualAtomics};
pub use epoch::{EpochMap, EpochSpec, Identity};
pub use real::{backoff, RealAtomics};
pub use round::{RoundChannel, RoundMsg, RoundSpec};
