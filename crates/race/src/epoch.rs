//! Epoch-stamped CAS map, extracted from the server's snapshot registry.
//!
//! Values are immutable handles (in production `Arc<TemporalGraph>`);
//! each name carries a monotone epoch bumped on every replacement.
//! [`EpochMap::replace_if_current`] is the compare-and-swap: a writer
//! that computed its replacement against a since-replaced value is
//! rejected instead of silently clobbering the newer one. The `(value,
//! epoch)` pair is published atomically — both live in one entry read
//! under a single lock section, which is exactly the property the
//! checker's torn-read mutation ([`EpochSpec::coupled_get`]) falsifies.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::atomics::{Atomics, MutexT};
use crate::real::RealAtomics;

/// Pointer-style identity for CAS comparison (production: `Arc::ptr_eq`).
pub trait Identity {
    /// Whether `self` and `other` are the same object.
    fn same(&self, other: &Self) -> bool;
}

impl<T: ?Sized> Identity for Arc<T> {
    fn same(&self, other: &Self) -> bool {
        Arc::ptr_eq(self, other)
    }
}

/// Protocol shape switches; production uses [`EpochSpec::default`] (both
/// on). Each `false` seeds a classic registry bug for the mutation tests:
/// a blind replace (lost update) or a torn `(value, epoch)` read.
#[derive(Clone, Copy, Debug)]
pub struct EpochSpec {
    /// Whether `replace_if_current` verifies identity before replacing.
    pub cas_checks_identity: bool,
    /// Whether `get` reads value and epoch under one lock section.
    pub coupled_get: bool,
}

impl Default for EpochSpec {
    fn default() -> Self {
        EpochSpec {
            cas_checks_identity: true,
            coupled_get: true,
        }
    }
}

/// A concurrent name → `(value, epoch)` map with CAS replacement.
pub struct EpochMap<T: Send, A: Atomics = RealAtomics> {
    inner: A::Mutex<BTreeMap<String, (T, u64)>>,
    spec: EpochSpec,
}

impl<T: Send + Identity + Clone> EpochMap<T, RealAtomics> {
    /// Production map with the audited protocol shape.
    #[must_use]
    pub fn new() -> Self {
        Self::with(&RealAtomics, EpochSpec::default())
    }
}

impl<T: Send + Identity + Clone> Default for EpochMap<T, RealAtomics> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Identity + Clone, A: Atomics> EpochMap<T, A> {
    /// Builds a map over `env`'s mutex with an explicit protocol shape.
    pub fn with(env: &A, spec: EpochSpec) -> Self {
        EpochMap {
            inner: env.mutex(BTreeMap::new(), "epoch.map"),
            spec,
        }
    }

    /// Registers (or replaces) `name`, returning the new epoch: 1 for a
    /// fresh name, previous + 1 on replacement.
    pub fn insert(&self, name: &str, value: T) -> u64 {
        let mut map = self.inner.lock();
        let epoch = map.get(name).map_or(1, |(_, e)| e + 1);
        map.insert(name.to_owned(), (value, epoch));
        epoch
    }

    /// Returns the value under `name` with its epoch, if any. The value is
    /// cloned and the lock released before returning.
    pub fn get(&self, name: &str) -> Option<(T, u64)> {
        if self.spec.coupled_get {
            self.inner.lock().get(name).map(|(v, e)| (v.clone(), *e))
        } else {
            // Seeded bug: value and epoch read in separate lock sections,
            // so a concurrent replacement yields a torn pair.
            let value = self.inner.lock().get(name).map(|(v, _)| v.clone())?;
            let epoch = self.inner.lock().get(name).map(|(_, e)| *e)?;
            Some((value, epoch))
        }
    }

    /// Atomically replaces `name` with `next` **only if** the registered
    /// value is still exactly `current` (identity, not equality). Returns
    /// the new epoch on success; `None` when the entry is missing or was
    /// replaced in the meantime.
    pub fn replace_if_current(&self, name: &str, current: &T, next: T) -> Option<u64> {
        let mut map = self.inner.lock();
        let entry = map.get_mut(name)?;
        if self.spec.cas_checks_identity && !entry.0.same(current) {
            return None;
        }
        entry.0 = next;
        entry.1 += 1;
        Some(entry.1)
    }

    /// Removes `name`; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.lock().remove(name).is_some()
    }

    /// Lists `(name, value, epoch)` triples in name order.
    pub fn list(&self) -> Vec<(String, T, u64)> {
        self.inner
            .lock()
            .iter()
            .map(|(k, (v, e))| (k.clone(), v.clone(), *e))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}
