//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `crossbeam` to this vendored implementation (see `[patch.crates-io]` in
//! the workspace manifest). Only `crossbeam::thread::scope` /
//! `Scope::spawn` are provided, implemented over `std::thread::scope`
//! (stable since 1.63, below the workspace's MSRV).

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result type of [`scope`], matching crossbeam's signature.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning scoped threads; wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (so
        /// nested spawns work, as in crossbeam).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which spawned threads are joined before `scope`
    /// returns. A panicking child propagates as a panic at join (upstream
    /// crossbeam instead reports it through the `Err` variant; callers
    /// using `.expect(...)` observe the same abort either way).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut sums = [0u64; 2];
        let (a, b) = sums.split_at_mut(1);
        super::thread::scope(|scope| {
            scope.spawn(|_| a[0] = data[..2].iter().sum());
            scope.spawn(|_| b[0] = data[2..].iter().sum());
        })
        .expect("workers succeed");
        assert_eq!(sums, [3, 7]);
    }

    #[test]
    fn nested_spawn_works() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope succeeds");
        assert_eq!(out, 42);
    }
}
