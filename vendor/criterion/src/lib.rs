//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this vendored implementation (see `[patch.crates-io]` in
//! the workspace manifest). It provides `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` and `Bencher::iter` with plain wall-clock timing and a
//! textual report — no statistical analysis, plotting or CLI filtering.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // one warmup round so lazy statics and caches are populated
        let mut warmup = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "  {}/{id}: median {} (min {}, max {}, {} samples)",
            self.name,
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (the stub's sampling unit).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        std::hint::black_box(out);
    }
}

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work (re-export of `std::hint::black_box` for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }
}
