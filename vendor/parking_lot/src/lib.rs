//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `parking_lot` to this vendored implementation (see `[patch.crates-io]`
//! in the workspace manifest). Only `Mutex` is provided, wrapping
//! `std::sync::Mutex` with parking_lot's poison-free `lock()` signature.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (a poisoned std mutex is recovered, matching parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_from_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
