//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this vendored implementation (see `[patch.crates-io]` in
//! the workspace manifest). It provides the API subset the workspace's
//! property tests use — the `proptest!` macro with optional
//! `#![proptest_config(...)]`, integer-range / tuple / `collection::vec` /
//! `option::of` / `any::<T>()` strategies, `prop_map` / `prop_flat_map`
//! combinators, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: generation is driven by a deterministic
//! per-test RNG (seeded from the test name, overridable case count via the
//! `PROPTEST_CASES` environment variable) and failing cases are **not
//! shrunk** — the failing values are reported as generated.

use std::marker::PhantomData;

/// Deterministic xoshiro256** RNG driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator seeded from an arbitrary string (the test name),
    /// so each test gets a reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())) % bound
    }
}

/// Error raised by a property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed; the run panics with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

/// Result type of a test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A generator of values of an associated type.
///
/// Unlike upstream proptest there is no value tree / shrinking; `generate`
/// draws a fresh value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification for [`vec`]: an exact length or a half-open /
    /// inclusive range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy generating `Option`s of an inner strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3/4 Some, matching upstream's bias toward present values.
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream grammar subset
/// `proptest! { #![proptest_config(expr)]? (#[test] fn name(pat in strategy, ...) { body })* }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let strategy = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).saturating_add(256),
                            "{}: too many prop_assume rejections ({rejected})",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} failed after {accepted} passing cases: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u8..4, 1usize..5), v in crate::collection::vec(0i64..100, 0..8)) {
            prop_assert!(a < 4);
            prop_assert!((1..5).contains(&b));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn map_and_flat_map(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..10, n).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn options_vary(o in crate::option::of(any::<bool>())) {
            // both variants must be constructible
            let _ = o;
        }

        #[test]
        #[should_panic(expected = "failed after")]
        fn failing_property_panics(x in 0u8..2) {
            prop_assert!(x > 10, "x was {}", x);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
