//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `rand` to this vendored implementation (see `[patch.crates-io]` in the
//! workspace manifest). It reproduces exactly the 0.8 API surface the
//! workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` / `Rng::gen_bool` over integer ranges, and
//! `seq::SliceRandom::shuffle` — backed by a deterministic xoshiro256**
//! generator. Streams differ from upstream `rand`, which is fine for the
//! synthetic data generators and tests that consume it.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive
    /// integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        // 53 random bits make a uniform f64 in [0, 1)
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // standard recommendation for seeding xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.gen_range(0u32..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "p=0.5 gave {hits}/1000");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
