//! Quickstart: build a small temporal attributed graph, apply the temporal
//! operators, aggregate it, and inspect its evolution.
//!
//! Run with `cargo run --example quickstart`.

use graphtempo_repro::prelude::*;

fn main() {
    // --- 1. Build a temporal attributed graph (Definition 2.1) -----------
    // Three years, authors with a static gender and a yearly paper count.
    let domain = TimeDomain::new(vec!["2021", "2022", "2023"]).unwrap();
    let mut schema = AttributeSchema::new();
    let gender = schema.declare("gender", Temporality::Static).unwrap();
    let papers = schema.declare("papers", Temporality::TimeVarying).unwrap();

    let mut b = GraphBuilder::new(domain, schema);
    let f = b.intern_category(gender, "f");
    let m = b.intern_category(gender, "m");

    let alice = b.add_node("alice").unwrap();
    let bob = b.add_node("bob").unwrap();
    let carol = b.add_node("carol").unwrap();
    let dan = b.add_node("dan").unwrap();
    for (node, g) in [(alice, &f), (bob, &m), (carol, &f), (dan, &m)] {
        b.set_static(node, gender, g.clone()).unwrap();
    }
    // presence + paper counts (setting a yearly value marks the author active)
    for (node, year, count) in [
        (alice, 0, 2),
        (alice, 1, 3),
        (alice, 2, 1),
        (bob, 0, 1),
        (bob, 1, 1),
        (carol, 1, 4),
        (carol, 2, 4),
        (dan, 2, 2),
    ] {
        b.set_time_varying(node, papers, TimePoint(year), Value::Int(count))
            .unwrap();
    }
    // collaborations per year
    for (u, v, year) in [
        (alice, bob, 0),
        (alice, bob, 1),
        (alice, carol, 1),
        (alice, carol, 2),
        (dan, carol, 2),
    ] {
        b.add_edge_at(u, v, TimePoint(year)).unwrap();
    }
    let g = b.build().unwrap();
    println!(
        "graph: {} authors, {} collaborations, {} years",
        g.n_nodes(),
        g.n_edges(),
        g.domain().len()
    );
    println!("{}", GraphStats::compute(&g).render_table());

    // --- 2. Temporal operators (§2.1) ------------------------------------
    let y2021 = TimeSet::point(3, TimePoint(0));
    let y2022 = TimeSet::point(3, TimePoint(1));
    let y2023 = TimeSet::point(3, TimePoint(2));

    let u = union(&g, &y2021, &y2022).unwrap();
    let i = intersection(&g, &y2021, &y2022).unwrap();
    let d_new = difference(&g, &y2023, &y2022).unwrap(); // what appeared in 2023
    println!(
        "union(2021,2022): {} nodes / {} edges; intersection: {} / {}; 2023−2022: {} / {}",
        u.n_nodes(),
        u.n_edges(),
        i.n_nodes(),
        i.n_edges(),
        d_new.n_nodes(),
        d_new.n_edges()
    );

    // --- 3. Aggregation (§2.2): DIST vs ALL ------------------------------
    let attrs = vec![g.schema().id("gender").unwrap()];
    let dist = aggregate(&u, &attrs, AggMode::Distinct);
    let all = aggregate(&u, &attrs, AggMode::All);
    println!(
        "\nunion graph aggregated on gender (DIST):\n{}",
        dist.render(&u)
    );
    println!(
        "union graph aggregated on gender (ALL):\n{}",
        all.render(&u)
    );

    // --- 4. Evolution (§2.3) ---------------------------------------------
    let evo = EvolutionGraph::compute(&g, &y2022, &y2023).unwrap();
    println!(
        "2022 → 2023: node stability {}, growth {}, shrinkage {}",
        evo.count_nodes(EvolutionClass::Stability),
        evo.count_nodes(EvolutionClass::Growth),
        evo.count_nodes(EvolutionClass::Shrinkage),
    );
    let evo_agg = evolution_aggregate(&g, &y2022, &y2023, &attrs, None).unwrap();
    for (tuple, w) in evo_agg.iter_nodes() {
        println!(
            "  gender tuple {:?}: stable {}, grown {}, shrunk {}",
            tuple, w.stability, w.growth, w.shrinkage
        );
    }

    // --- 5. Exploration (§3): when do ≥1 f→f collaborations stay stable? -
    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: attrs.clone(),
        selector: Selector::edge_1attr(f.clone(), f.clone()),
    };
    let out = explore(&g, &cfg).unwrap();
    println!("\nminimal interval pairs with ≥1 stable f→f collaboration:");
    for (pair, r) in &out.pairs {
        println!("  {} → {} events", pair.display(g.domain()), r);
    }
    println!("({} aggregate evaluations)", out.evaluations);
}
