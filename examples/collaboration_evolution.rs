//! Collaboration-network evolution, following the paper's DBLP study
//! (§5.2, Fig. 12 and Fig. 14): gender-aggregated evolution of highly
//! active authors, and exploration of female–female collaborations.
//!
//! Run with `cargo run --example collaboration_evolution` (add
//! `--release` for the full-scale dataset via `SCALE=1.0`).

use graphtempo_repro::prelude::*;
use tempo_graph::NodeId;

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("generating DBLP-like collaboration graph (scale {scale}) ...");
    let g = DblpConfig::scaled(scale).generate().unwrap();
    println!("{}", GraphStats::compute(&g).render_table());

    let n = g.domain().len();
    let gender = g.schema().id("gender").unwrap();
    let pubs = g.schema().id("publications").unwrap();
    let f = g.schema().category(gender, "f").unwrap();
    let attrs = vec![gender];

    // --- Fig. 12: evolution of highly active authors ----------------------
    // Aggregate evolution on gender, restricted to authors with more than 4
    // publications in the year considered.
    let high_activity = move |gr: &TemporalGraph, node: NodeId, t: TimePoint| {
        gr.attr_value(node, pubs, t).as_int().unwrap_or(0) > 4
    };
    for (label, t1, t2) in [
        (
            "2010 vs the 2000s",
            TimeSet::range(n, 0, 9),
            TimeSet::point(n, TimePoint(10)),
        ),
        (
            "2020 vs the 2010s",
            TimeSet::range(n, 10, 19),
            TimeSet::point(n, TimePoint(20)),
        ),
    ] {
        let evo = evolution_aggregate(&g, &t1, &t2, &attrs, Some(&high_activity)).unwrap();
        println!("\nevolution of active authors (>4 publications), {label}:");
        for (tuple, w) in evo.iter_nodes() {
            let name = g.schema().def(gender).render(&tuple[0]);
            let total = w.stability + w.growth + w.shrinkage;
            if total == 0 {
                continue;
            }
            println!(
                "  {name}: stable {} ({:.0}%), grown {}, shrunk {}",
                w.stability,
                100.0 * w.stability as f64 / total as f64,
                w.growth,
                w.shrinkage
            );
        }
        let e = evo.edge_totals();
        println!(
            "  collaborations: stable {}, grown {}, shrunk {}",
            e.stability, e.growth, e.shrinkage
        );
    }

    // --- Beyond COUNT: measures over the attributed edges -----------------
    // The DBLP generator records papers co-authored per year as edge values;
    // SUM/AVG measures aggregate them per gender pair (the paper's "other
    // aggregations may be supported, if edges are attributed as well").
    use graphtempo::measures::{aggregate_measure, EdgeMeasure, NodeMeasure};
    let papers = aggregate_measure(
        &g,
        &[gender],
        NodeMeasure::Sum(pubs),
        EdgeMeasure::SumValues,
    )
    .unwrap();
    println!("\ntotal publications per gender (sum over yearly appearances):");
    for (tuple, v) in papers.iter_nodes() {
        println!("  {}: {v:.0}", g.schema().def(gender).render(&tuple[0]));
    }
    println!("total co-authored papers per gender pair:");
    for ((s, d), v) in papers.iter_edges() {
        println!(
            "  {} -> {}: {v:.0}",
            g.schema().def(gender).render(&s[0]),
            g.schema().def(gender).render(&d[0])
        );
    }

    // --- Fig. 14: exploration of female–female collaborations ------------
    let selector = Selector::edge_1attr(f.clone(), f.clone());

    // (a) maximal stability intervals (intersection semantics)
    let mut cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Intersection,
        k: 1,
        attrs: attrs.clone(),
        selector: selector.clone(),
    };
    if let Some(wth) = suggest_k(&g, &cfg).unwrap() {
        println!("\nstability w_th (max over consecutive years) = {wth}");
        for k in [1.max(wth / 62), 1.max(wth / 2), wth] {
            cfg.k = k;
            let out = explore(&g, &cfg).unwrap();
            println!("  k={k}: {} maximal interval pairs", out.pairs.len());
            for (pair, r) in out.pairs.iter().take(3) {
                println!("    {} → {r} stable f→f edges", pair.display(g.domain()));
            }
        }
    }

    // (b) minimal growth intervals (union semantics)
    let mut cfg = ExploreConfig {
        event: Event::Growth,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: attrs.clone(),
        selector: selector.clone(),
    };
    if let Some(wth) = suggest_k(&g, &cfg).unwrap() {
        println!("\ngrowth w_th (min over consecutive years) = {wth}");
        for k in [wth, wth * 3, wth * 10] {
            cfg.k = k;
            let out = explore(&g, &cfg).unwrap();
            println!("  k={k}: {} minimal interval pairs", out.pairs.len());
        }
    }

    // (c) minimal shrinkage intervals (union semantics, extending 𝒯old)
    let mut cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::Old,
        semantics: Semantics::Union,
        k: 1,
        attrs,
        selector,
    };
    if let Some(wth) = suggest_k(&g, &cfg).unwrap() {
        println!("\nshrinkage w_th (min over consecutive years) = {wth}");
        for k in [wth, wth * 5, wth * 20] {
            cfg.k = k;
            let out = explore(&g, &cfg).unwrap();
            println!("  k={k}: {} minimal interval pairs", out.pairs.len());
            for (pair, r) in out.pairs.iter().take(3) {
                println!("    {} → {r} deleted f→f edges", pair.display(g.domain()));
            }
        }
    }
}
