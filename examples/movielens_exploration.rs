//! MovieLens exploration, following §5.2 / Fig. 13: maximal stability and
//! minimal growth/shrinkage interval pairs for female–female co-rating
//! relationships, with thresholds initialized per §3.5.
//!
//! Run with `cargo run --release --example movielens_exploration`
//! (`SCALE=1.0` reproduces the paper's dataset size; the default is small).

use graphtempo_repro::prelude::*;

fn main() {
    let scale: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    println!("generating MovieLens-like co-rating graph (scale {scale}) ...");
    let g = MovieLensConfig::scaled(scale).generate().unwrap();
    println!("{}", GraphStats::compute(&g).render_table());

    let gender = g.schema().id("gender").unwrap();
    let f = g.schema().category(gender, "F").unwrap();
    let selector = Selector::edge_1attr(f.clone(), f.clone());
    let attrs = vec![gender];

    // --- (a) stability: maximal pairs under intersection semantics -------
    let mut cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Intersection,
        k: 1,
        attrs: attrs.clone(),
        selector: selector.clone(),
    };
    let wth = suggest_k(&g, &cfg).unwrap().unwrap_or(1);
    println!("\n(a) stability of F→F co-ratings, w_th = {wth} (decreasing schedule)");
    for k in [1.max(wth / 86), 1.max(wth / 2), wth] {
        cfg.k = k;
        let out = explore(&g, &cfg).unwrap();
        println!(
            "  k={k}: {} maximal pairs ({} evaluations)",
            out.pairs.len(),
            out.evaluations
        );
        for (pair, r) in out.pairs.iter().take(3) {
            println!("    {} → {r} stable F→F edges", pair.display(g.domain()));
        }
    }

    // --- (b) growth: minimal pairs under union semantics ------------------
    let mut cfg = ExploreConfig {
        event: Event::Growth,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: attrs.clone(),
        selector: selector.clone(),
    };
    let wth = suggest_k(&g, &cfg).unwrap().unwrap_or(1);
    println!("\n(b) growth of F→F co-ratings, w_th = {wth} (increasing schedule)");
    for k in [1.max(wth / 12), 1.max(wth / 2), wth] {
        cfg.k = k;
        let out = explore(&g, &cfg).unwrap();
        println!(
            "  k={k}: {} minimal pairs ({} evaluations)",
            out.pairs.len(),
            out.evaluations
        );
        for (pair, r) in out.pairs.iter().take(3) {
            println!("    {} → {r} new F→F edges", pair.display(g.domain()));
        }
    }

    // --- (c) shrinkage: minimal pairs under union semantics ---------------
    let mut cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::Old,
        semantics: Semantics::Union,
        k: 1,
        attrs,
        selector,
    };
    let wth = suggest_k(&g, &cfg).unwrap().unwrap_or(1);
    println!("\n(c) shrinkage of F→F co-ratings, w_th = {wth} (increasing schedule)");
    for k in [wth, wth * 2, wth * 5] {
        cfg.k = k;
        let out = explore(&g, &cfg).unwrap();
        println!(
            "  k={k}: {} minimal pairs ({} evaluations)",
            out.pairs.len(),
            out.evaluations
        );
        for (pair, r) in out.pairs.iter().take(3) {
            println!("    {} → {r} deleted F→F edges", pair.display(g.domain()));
        }
    }

    // --- pruning vs naive enumeration ------------------------------------
    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: wth.max(1),
        attrs: vec![gender],
        selector: Selector::edge_1attr(f.clone(), f),
    };
    let fast = explore(&g, &cfg).unwrap();
    let slow = explore_naive(&g, &cfg).unwrap();
    assert_eq!(fast.pairs, slow.pairs);
    println!(
        "\npruned exploration: {} evaluations vs naive {} ({}x saved), identical results",
        fast.evaluations,
        slow.evaluations,
        slow.evaluations as f64 / fast.evaluations.max(1) as f64
    );
}
