//! Epidemic-mitigation scenario from the paper's introduction: a primary
//! school face-to-face contact network, where temporal aggregation by class
//! and grade reveals the homophily that makes targeted class closure
//! effective, and stability/shrinkage events measure whether mitigation
//! works.
//!
//! Run with `cargo run --example epidemic_contacts`.

use graphtempo_repro::prelude::*;

fn main() {
    let school = SchoolConfig::default();
    println!(
        "school: {} grades × {} classes × {} students, {} days",
        school.grades, school.classes_per_grade, school.students_per_class, school.days
    );
    let g = school.generate().unwrap();
    println!("{}", GraphStats::compute(&g).render_table());

    let grade = g.schema().id("grade").unwrap();
    let class = g.schema().id("class").unwrap();
    let n = g.domain().len();

    // --- Homophily: aggregate the full period by class --------------------
    let agg = aggregate(&g, &[class], AggMode::All);
    let mut intra = 0u64;
    let mut inter = 0u64;
    for ((src, dst), w) in agg.iter_edges() {
        if src == dst {
            intra += w;
        } else {
            inter += w;
        }
    }
    println!(
        "contact appearances: {} intra-class vs {} inter-class ({:.0}% homophilous)",
        intra,
        inter,
        100.0 * intra as f64 / (intra + inter) as f64
    );

    // Aggregating by grade coarsens the picture (D-distributive roll-up is
    // not applicable across different attributes, so aggregate directly).
    let by_grade = aggregate(&g, &[grade], AggMode::All);
    println!("\ncontacts aggregated by grade (ALL):");
    for ((src, dst), w) in by_grade.iter_edges().iter().take(8) {
        println!(
            "  {} ↔ {}: {w}",
            g.schema().def(grade).render(&src[0]),
            g.schema().def(grade).render(&dst[0])
        );
    }

    // --- Stable contact pairs week over week ------------------------------
    // Stability between the first and second school week indicates contact
    // patterns that closures must break.
    let week1 = TimeSet::range(n, 0, (n / 2).saturating_sub(1));
    let week2 = TimeSet::range(n, n / 2, n - 1);
    let stable = intersection(&g, &week1, &week2).unwrap();
    let stable_agg = aggregate(
        &stable,
        &[stable.schema().id("class").unwrap()],
        AggMode::Distinct,
    );
    let stable_intra: u64 = stable_agg
        .iter_edges()
        .iter()
        .filter(|((s, d), _)| s == d)
        .map(|(_, w)| w)
        .sum();
    println!(
        "\nstable contact pairs across weeks: {} total, {} intra-class",
        stable_agg.total_edge_weight(),
        stable_intra
    );

    // --- Exploration: days of high contact turnover -----------------------
    // Minimal day pairs where at least k contact pairs disappear — with high
    // turnover, mitigation assessments must look at short horizons.
    let mut cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::Old,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![class],
        selector: Selector::AllEdges,
    };
    if let Some(wth) = suggest_k(&g, &cfg).unwrap() {
        cfg.k = wth;
        let out = explore(&g, &cfg).unwrap();
        println!(
            "\nminimal intervals with ≥{} vanished contact pairs: {} (of {} references)",
            wth,
            out.pairs.len(),
            n - 1
        );
        for (pair, r) in out.pairs.iter().take(5) {
            println!("  {} → {r} contacts gone", pair.display(g.domain()));
        }
    }

    // Stable contacts that never break indicate where further measures are
    // needed (§1): maximal stability intervals under intersection semantics.
    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Intersection,
        k: 5,
        attrs: vec![class],
        selector: Selector::AllEdges,
    };
    let out = explore(&g, &cfg).unwrap();
    println!("\nmaximal intervals with ≥5 persistently stable contacts:");
    for (pair, r) in out.pairs.iter().take(5) {
        println!("  {} → {r} stable contacts", pair.display(g.domain()));
    }
}
