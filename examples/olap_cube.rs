//! OLAP-style analysis of the MovieLens co-rating graph: build the cube on
//! all four attributes once, then answer roll-up / drill-down / slice
//! queries at any time granularity without re-touching the graph (§4.3's
//! partial-materialization strategy), and zoom the whole graph to a coarser
//! time domain.
//!
//! Run with `cargo run --example olap_cube`.

use graphtempo::cube::{GraphCube, Level};
use graphtempo::zoom::{zoom_out, Granularity};
use graphtempo_repro::prelude::*;

fn main() {
    let g = MovieLensConfig::scaled(0.2).generate().unwrap();
    println!("{}", GraphStats::compute(&g).render_table());

    let attrs: Vec<AttrId> = ["gender", "age", "occupation", "rating"]
        .iter()
        .map(|n| g.schema().id(n).unwrap())
        .collect();
    let cube = GraphCube::build(&g, &attrs, 4);
    println!(
        "cube built on {:?} — {} attribute levels derivable",
        cube.base_level().names(),
        cube.all_levels().len()
    );

    // Slice: who rated in August, by gender?
    let aug = TimePoint(3);
    let by_gender = cube.slice(&Level::new(vec!["gender"]), aug).unwrap();
    println!("\nAugust by gender:\n{}", by_gender.render(&g));

    // Drill down to (gender, age) for the same slice.
    let ga = cube.drill_down(&Level::new(vec!["gender"]), "age").unwrap();
    let detailed = cube.slice(&ga, aug).unwrap();
    println!(
        "drill-down to (gender, age): {} aggregate nodes, {} aggregate edges",
        detailed.n_nodes(),
        detailed.n_edges()
    );

    // Query a whole-summer scope at the (rating) level — answered from the
    // per-month cuboids alone (T-distributive union).
    let summer = TimeSet::range(g.domain().len(), 0, 3); // May..Aug
    let ratings = cube.query(&Level::new(vec!["rating"]), &summer).unwrap();
    println!("\nMay–Aug rating distribution (appearances):");
    for (tuple, w) in ratings.iter_nodes() {
        println!("  rating {}: {w}", tuple[0]);
    }

    // Zoom the graph itself to two-month resolution and compare.
    let gran = Granularity::windows(g.domain(), 2).unwrap();
    let coarse = zoom_out(&g, &gran, SideTest::Any).unwrap();
    println!(
        "\nzoomed to {:?}: {} nodes, {} edges",
        coarse.domain().labels(),
        coarse.n_nodes(),
        coarse.n_edges()
    );
    let coarse_agg = aggregate(
        &coarse,
        &[coarse.schema().id("gender").unwrap()],
        AggMode::Distinct,
    );
    println!(
        "gender DIST on the zoomed graph:\n{}",
        coarse_agg.render(&coarse)
    );
}
