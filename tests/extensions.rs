//! Integration tests for the extension features: incremental snapshots,
//! the OLAP cube, time zooming, the Definition-3.6 solver, and metrics.

use graphtempo::materialize::TimepointStore;
use graphtempo_repro::prelude::*;
use tempo_graph::metrics::{edge_jaccard, node_jaccard, turnover_profile};

#[test]
fn incremental_snapshot_pipeline() {
    // Start from a generated graph, append a synthetic "next year", and
    // keep the materialized store in sync incrementally.
    let g = DblpConfig::scaled(0.01).generate().unwrap();
    let gender = g.schema().id("gender").unwrap();
    let pubs = g.schema().id("publications").unwrap();
    let mut store = TimepointStore::build(&g, &[gender]);
    let old_len = g.domain().len();

    let mut b = GraphBuilder::from_graph(g, &["2021"]).unwrap();
    let t_new = TimePoint(old_len as u32);
    // a returning author and a brand-new one collaborate in 2021
    let veteran = b.get_or_add_node("a0");
    let rookie = b.get_or_add_node("rookie-2021");
    let f = b.schema().category(gender, "f");
    let val = f.unwrap_or(Value::Cat(0));
    b.set_static(rookie, gender, val).unwrap();
    b.set_time_varying(veteran, pubs, t_new, Value::Int(2))
        .unwrap();
    b.set_time_varying(rookie, pubs, t_new, Value::Int(1))
        .unwrap();
    b.add_edge_at(veteran, rookie, t_new).unwrap();
    let g2 = b.build().unwrap();
    assert_eq!(g2.domain().len(), old_len + 1);

    assert_eq!(store.append_new_points(&g2).unwrap(), 1);
    let rebuilt = TimepointStore::build(&g2, &[gender]);
    for t in g2.domain().iter() {
        assert_eq!(store.at(t), rebuilt.at(t));
    }

    // growth exploration sees the new snapshot
    let d = difference(
        &g2,
        &TimeSet::point(old_len + 1, t_new),
        &TimeSet::range(old_len + 1, 0, old_len - 1),
    )
    .unwrap();
    assert!(d.node_id("rookie-2021").is_some());
}

#[test]
fn cube_levels_consistent_with_rollup_chain() {
    let g = MovieLensConfig::scaled(0.08).generate().unwrap();
    let attrs: Vec<AttrId> = ["gender", "age", "rating"]
        .iter()
        .map(|n| g.schema().id(n).unwrap())
        .collect();
    let cube = GraphCube::build(&g, &attrs, 2);
    assert_eq!(cube.all_levels().len(), 7);
    // rolling up twice equals querying the coarse level directly
    let scope = g.domain().all();
    let fine = cube
        .query(&Level::new(vec!["gender", "age"]), &scope)
        .unwrap();
    let via_rollup = rollup(&fine, &["gender"]).unwrap();
    let direct = cube.query(&Level::new(vec!["gender"]), &scope).unwrap();
    assert_eq!(via_rollup, direct);
}

#[test]
fn zoom_then_explore() {
    // Zoom DBLP years into ~triennia, then explore on the coarse domain.
    let g = DblpConfig::scaled(0.02).generate().unwrap();
    let gran = Granularity::windows(g.domain(), 3).unwrap();
    let z = zoom_out(&g, &gran, SideTest::Any).unwrap();
    assert_eq!(z.domain().len(), 7);
    let gender = z.schema().id("gender").unwrap();
    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![gender],
        selector: Selector::AllEdges,
    };
    let fast = explore(&z, &cfg).unwrap();
    let slow = explore_naive(&z, &cfg).unwrap();
    assert_eq!(fast.pairs, slow.pairs);
    assert!(!fast.pairs.is_empty());
}

#[test]
fn solve_problem_report_is_consistent() {
    let g = MovieLensConfig::scaled(0.08).generate().unwrap();
    let gender = g.schema().id("gender").unwrap();
    let report = solve_problem(&g, 3, &[gender], &Selector::AllEdges, ExtendSide::New).unwrap();
    assert_eq!(report.events.len(), 3);
    // every reported pair individually satisfies the threshold
    for e in &report.events {
        for (_, r) in e.minimal.pairs.iter().chain(&e.maximal.pairs) {
            assert!(*r >= 3);
        }
    }
    let text = report.render(g.domain());
    assert!(text.contains("Growth") && text.contains("Shrinkage"));
}

#[test]
fn generator_persistence_shows_in_metrics() {
    // node persistence 0.6 should leave a clearly positive node Jaccard
    // between consecutive years, and edge turnover should exceed node
    // turnover (edges churn faster — the paper's Fig. 13c observation).
    let g = DblpConfig::scaled(0.02).generate().unwrap();
    let profile = turnover_profile(&g);
    assert_eq!(profile.len(), 20);
    let avg_node: f64 = profile.iter().map(|(n, _)| n).sum::<f64>() / profile.len() as f64;
    let avg_edge: f64 = profile.iter().map(|(_, e)| e).sum::<f64>() / profile.len() as f64;
    assert!(avg_node > 0.2, "node overlap too low: {avg_node}");
    assert!(
        avg_edge < avg_node,
        "edges should churn faster than nodes: {avg_edge} vs {avg_node}"
    );
    // symmetric single-pair checks
    let j = node_jaccard(&g, TimePoint(0), TimePoint(1));
    assert!((0.0..=1.0).contains(&j));
    assert!(edge_jaccard(&g, TimePoint(0), TimePoint(0)) > 0.999);
}
