//! Integration test: the paper's running example end to end.
//!
//! Walks the Fig. 1 graph through every construct of §2 and asserts the
//! numbers the paper states for Fig. 2 (union), Fig. 3 (aggregation),
//! Fig. 4 (evolution) and Table 2 (storage).

use graphtempo_repro::prelude::*;
use tempo_graph::fixtures::fig1;

fn ts(points: &[usize]) -> TimeSet {
    TimeSet::from_indices(3, points.iter().copied())
}

fn cat(g: &TemporalGraph, attr: &str, label: &str) -> Value {
    let a = g.schema().id(attr).unwrap();
    g.schema().category(a, label).unwrap()
}

#[test]
fn table2_storage_layout() {
    let g = fig1();
    // V: u1 = 110, u5 = 001
    let u1 = g.node_id("u1").unwrap();
    let u5 = g.node_id("u5").unwrap();
    assert!(g.node_alive_at(u1, TimePoint(0)) && g.node_alive_at(u1, TimePoint(1)));
    assert!(!g.node_alive_at(u1, TimePoint(2)));
    assert!(g.node_alive_at(u5, TimePoint(2)) && !g.node_alive_at(u5, TimePoint(0)));
    // A (#publications): u1 = 3,1,-; u4 = 2,1,1
    let pubs = g.schema().id("publications").unwrap();
    let u4 = g.node_id("u4").unwrap();
    assert_eq!(g.attr_value(u1, pubs, TimePoint(0)), Value::Int(3));
    assert_eq!(g.attr_value(u1, pubs, TimePoint(2)), Value::Null);
    assert_eq!(g.attr_value(u4, pubs, TimePoint(0)), Value::Int(2));
    // S (gender): u1 = m, u2..u4 = f, u5 = m
    let gender = g.schema().id("gender").unwrap();
    let m = cat(&g, "gender", "m");
    assert_eq!(g.static_value(u1, gender).unwrap(), m);
    assert_eq!(g.static_value(u5, gender).unwrap(), m);
}

#[test]
fn fig2_union_graph() {
    let g = fig1();
    let u = union(&g, &ts(&[0]), &ts(&[1])).unwrap();
    // u1..u4 survive, u5 does not
    assert_eq!(u.n_nodes(), 4);
    assert!(u.node_id("u5").is_none());
    // Attributes carried for every time point of the scope
    let pubs = u.schema().id("publications").unwrap();
    let u1 = u.node_id("u1").unwrap();
    assert_eq!(u.attr_value(u1, pubs, TimePoint(0)), Value::Int(3));
    assert_eq!(u.attr_value(u1, pubs, TimePoint(1)), Value::Int(1));
}

#[test]
fn fig3_aggregations() {
    let g = fig1();
    let attrs: Vec<AttrId> = ["gender", "publications"]
        .iter()
        .map(|n| g.schema().id(n).unwrap())
        .collect();
    let f = cat(&g, "gender", "f");
    let m = cat(&g, "gender", "m");

    // Fig. 3a (t0): (m,3)=1, (f,1)=2, (f,2)=1
    let p0 = project_point(&g, TimePoint(0)).unwrap();
    let a0 = aggregate(&p0, &attrs, AggMode::Distinct);
    assert_eq!(a0.node_weight(&[m.clone(), Value::Int(3)]), 1);
    assert_eq!(a0.node_weight(&[f.clone(), Value::Int(1)]), 2);
    assert_eq!(a0.node_weight(&[f.clone(), Value::Int(2)]), 1);

    // Fig. 3b (t1): (m,1)=1, (f,1)=2
    let p1 = project_point(&g, TimePoint(1)).unwrap();
    let a1 = aggregate(&p1, &attrs, AggMode::Distinct);
    assert_eq!(a1.node_weight(&[m.clone(), Value::Int(1)]), 1);
    assert_eq!(a1.node_weight(&[f.clone(), Value::Int(1)]), 2);

    // Fig. 3c (t2): (m,3)=1, (f,1)=2
    let p2 = project_point(&g, TimePoint(2)).unwrap();
    let a2 = aggregate(&p2, &attrs, AggMode::Distinct);
    assert_eq!(a2.node_weight(&[m.clone(), Value::Int(3)]), 1);
    assert_eq!(a2.node_weight(&[f.clone(), Value::Int(1)]), 2);

    // Fig. 3d/e: union [t0,t1], (f,1): DIST 3 vs ALL 4 — the paper's
    // worked DIST/ALL contrast.
    let u = union(&g, &ts(&[0]), &ts(&[1])).unwrap();
    let dist = aggregate(&u, &attrs, AggMode::Distinct);
    let all = aggregate(&u, &attrs, AggMode::All);
    assert_eq!(dist.node_weight(&[f.clone(), Value::Int(1)]), 3);
    assert_eq!(all.node_weight(&[f.clone(), Value::Int(1)]), 4);

    // The Algorithm-2 dataframe implementation agrees on the union graph.
    let framed = aggregate_via_frames(&u, &attrs, AggMode::Distinct).unwrap();
    assert_eq!(framed, dist);
}

#[test]
fn fig4_evolution() {
    let g = fig1();
    let attrs: Vec<AttrId> = ["gender", "publications"]
        .iter()
        .map(|n| g.schema().id(n).unwrap())
        .collect();
    let f = cat(&g, "gender", "f");

    // Fig. 4a: classification of entities between t0 and t1
    let evo = EvolutionGraph::compute(&g, &ts(&[0]), &ts(&[1])).unwrap();
    assert_eq!(evo.count_nodes(EvolutionClass::Stability), 3); // u1,u2,u4
    assert_eq!(evo.count_nodes(EvolutionClass::Shrinkage), 1); // u3

    // Fig. 4b: node (f,1) has stability 1 (u2), growth 1 (u4), shrinkage 1 (u3)
    let agg = evolution_aggregate(&g, &ts(&[0]), &ts(&[1]), &attrs, None).unwrap();
    let w = agg.node_weights(&[f, Value::Int(1)]);
    assert_eq!((w.stability, w.growth, w.shrinkage), (1, 1, 1));
}

#[test]
fn section3_worked_exploration() {
    // Theorem 3.7: minimal stability pairs differ between extending 𝒯new
    // and extending 𝒯old.
    let g = fig1();
    let gender = g.schema().id("gender").unwrap();
    let base = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 3,
        attrs: vec![gender],
        selector: Selector::AllEdges,
    };
    let new_side = explore(&g, &base).unwrap();
    let mut cfg_old = base.clone();
    cfg_old.extend = ExtendSide::Old;
    let old_side = explore(&g, &cfg_old).unwrap();
    // both valid, but pair sets are generally different (Theorem 3.7)
    assert!(new_side.pairs != old_side.pairs || new_side.pairs.is_empty());

    // Theorem 3.8: under intersection semantics, pairs covering identical
    // time points give identical results regardless of which side was the
    // reference (𝒯ᵢ ∩ (𝒯ᵢ₊₁ ∩ 𝒯ᵢ₊₂) = (𝒯ᵢ ∩ 𝒯ᵢ₊₁) ∩ 𝒯ᵢ₊₂). The longest
    // maximal pair — the chain that both schemes can fully build — must
    // therefore coincide.
    let mut cfg = base.clone();
    cfg.semantics = Semantics::Intersection;
    cfg.k = 1;
    let a = explore(&g, &cfg).unwrap();
    cfg.extend = ExtendSide::Old;
    let b = explore(&g, &cfg).unwrap();
    let longest = |o: &graphtempo::ExploreOutcome| {
        o.pairs
            .iter()
            .map(|(p, r)| {
                let mut pts: Vec<u32> = p.told.union(&p.tnew).iter().map(|t| t.0).collect();
                pts.sort_unstable();
                (pts, *r)
            })
            .max_by_key(|(pts, _)| pts.len())
            .expect("at least one maximal pair")
    };
    assert_eq!(longest(&a), longest(&b));
}
