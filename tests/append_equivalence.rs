//! Property test for the versioned copy-on-write snapshot layer: a graph
//! built by N successive [`GraphVersions::append_timepoint`] calls must be
//! bit-identical — presence matrices, transposed presence columns,
//! attribute values, all twelve Table-1 explore strategies, aggregation,
//! and zoom — to a graph built from scratch over the same history, at
//! **every** intermediate epoch, under both presence-column policies.
//!
//! The from-scratch reference replays the same patches through
//! [`TimepointPatch::apply_to_builder`], which interns entities in the same
//! order as the append path, so ids (and therefore raw bit layouts) line
//! up exactly.

use graphtempo_repro::prelude::*;
use proptest::prelude::*;
use tempo_columnar::SparseMode;

/// Pool of node names: indexes 0..6 exist in the base graph, 6..8 are
/// introduced only by patches.
const POOL: usize = 8;
const BASE_NODES: usize = 6;

/// One randomly drawn patch, in index form (converted to a
/// [`TimepointPatch`] once the schema's category codes are known).
#[derive(Clone, Debug)]
struct PatchSpec {
    nodes: Vec<usize>,
    edges: Vec<(usize, usize)>,
    tvs: Vec<(usize, usize)>,
    statics: Vec<(usize, usize)>,
    edge_values: Vec<(usize, usize, i64)>,
}

fn patch_spec() -> impl Strategy<Value = PatchSpec> {
    (
        proptest::collection::vec(0usize..POOL, 0..4),
        proptest::collection::vec((0usize..POOL, 0usize..POOL), 0..4),
        proptest::collection::vec((0usize..POOL, 0usize..3), 0..4),
        proptest::collection::vec((0usize..POOL, 0usize..2), 0..3),
        proptest::collection::vec((0usize..POOL, 0usize..POOL, 1i64..9), 0..3),
    )
        .prop_map(|(nodes, edges, tvs, statics, edge_values)| PatchSpec {
            nodes,
            edges,
            tvs,
            statics,
            edge_values,
        })
}

const TEAMS: [&str; 2] = ["red", "blue"];
const ROLES: [&str; 3] = ["dev", "ops", "qa"];

/// Builds the shared base history (two timepoints) into a fresh builder
/// whose domain already spans `labels`. Both the incremental and the
/// from-scratch paths run exactly this code, so intern orders agree.
fn base_builder(
    labels: &[String],
    presence: &[(usize, usize)],
    edges: &[(usize, usize, usize)],
) -> GraphBuilder {
    let mut schema = AttributeSchema::new();
    schema.declare("team", Temporality::Static).unwrap();
    schema.declare("role", Temporality::TimeVarying).unwrap();
    let mut b = GraphBuilder::new(
        TimeDomain::new(labels.to_vec()).expect("unique labels"),
        schema,
    );
    let team = b.schema().id("team").unwrap();
    let role = b.schema().id("role").unwrap();
    // intern every category up front so patches can address them by code
    for t in TEAMS {
        b.intern_category(team, t);
    }
    for r in ROLES {
        b.intern_category(role, r);
    }
    let nodes: Vec<_> = (0..BASE_NODES)
        .map(|i| b.add_node(&format!("n{i}")).unwrap())
        .collect();
    for (i, &n) in nodes.iter().enumerate() {
        let v = b.schema().category(team, TEAMS[i % 2]).unwrap();
        b.set_static(n, team, v).unwrap();
    }
    for &(n, t) in presence {
        b.set_presence(nodes[n % BASE_NODES], TimePoint((t % 2) as u32))
            .unwrap();
    }
    for &(u, v, t) in edges {
        let (u, v) = (u % BASE_NODES, v % BASE_NODES);
        if u == v {
            continue;
        }
        b.add_edge_at(nodes[u], nodes[v], TimePoint((t % 2) as u32))
            .unwrap();
    }
    // every base node is present somewhere so the fixture is never empty
    b.set_presence(nodes[0], TimePoint(0)).unwrap();
    b
}

/// Converts a spec into a [`TimepointPatch`], resolving category codes
/// against the built base graph's schema (identical in both paths).
fn to_patch(g0: &TemporalGraph, label: &str, spec: &PatchSpec) -> TimepointPatch {
    let team = g0.schema().id("team").unwrap();
    let role = g0.schema().id("role").unwrap();
    let name = |i: usize| format!("n{i}");
    let mut p = TimepointPatch::new(label);
    for &n in &spec.nodes {
        p.mark_node(name(n));
    }
    for &(n, t) in &spec.statics {
        let v = g0.schema().category(team, TEAMS[t]).unwrap();
        p.set_static(name(n), team, v);
    }
    for &(n, r) in &spec.tvs {
        let v = g0.schema().category(role, ROLES[r]).unwrap();
        p.set_time_varying(name(n), role, v);
    }
    for &(u, v) in &spec.edges {
        if u != v {
            p.add_edge(name(u), name(v));
        }
    }
    for &(u, v, w) in &spec.edge_values {
        if u != v {
            p.set_edge_value(name(u), name(v), Value::Int(w));
        }
    }
    p
}

/// Asserts every observable surface of the two graphs is identical.
fn assert_identical(inc: &TemporalGraph, reb: &TemporalGraph, ctx: &str) {
    assert!(inc.validate().is_ok(), "{ctx}: appended graph invalid");
    assert_eq!(
        inc.domain().labels(),
        reb.domain().labels(),
        "{ctx}: labels"
    );
    assert_eq!(inc.n_nodes(), reb.n_nodes(), "{ctx}: node count");
    assert_eq!(inc.n_edges(), reb.n_edges(), "{ctx}: edge count");
    for (a, b) in inc.node_ids().zip(reb.node_ids()) {
        assert_eq!(inc.node_name(a), reb.node_name(b), "{ctx}: node order");
    }
    // raw presence matrices and the transposed per-timepoint indexes
    assert_eq!(
        inc.node_presence_matrix(),
        reb.node_presence_matrix(),
        "{ctx}: node presence"
    );
    assert_eq!(
        inc.edge_presence_matrix(),
        reb.edge_presence_matrix(),
        "{ctx}: edge presence"
    );
    assert_eq!(
        inc.node_presence_columns(),
        reb.node_presence_columns(),
        "{ctx}: transposed node columns"
    );
    assert_eq!(
        inc.edge_presence_columns(),
        reb.edge_presence_columns(),
        "{ctx}: transposed edge columns"
    );
    assert_eq!(
        inc.edge_values_matrix(),
        reb.edge_values_matrix(),
        "{ctx}: edge values"
    );
    // attribute values, cell by cell
    let team = inc.schema().id("team").unwrap();
    let role = inc.schema().id("role").unwrap();
    for n in inc.node_ids() {
        for t in inc.domain().iter() {
            for attr in [team, role] {
                assert_eq!(
                    inc.attr_value(n, attr, t),
                    reb.attr_value(n, attr, t),
                    "{ctx}: attr value of {} at {t:?}",
                    inc.node_name(n)
                );
            }
        }
    }
    // aggregation, both weight modes
    for mode in [AggMode::Distinct, AggMode::All] {
        assert_eq!(
            aggregate(inc, &[team, role], mode),
            aggregate(reb, &[team, role], mode),
            "{ctx}: aggregate {mode:?}"
        );
    }
    // all twelve Table-1 exploration strategies
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 1,
                    attrs: vec![team],
                    selector: Selector::AllEdges,
                };
                let a = explore(inc, &cfg).unwrap();
                let b = explore(reb, &cfg).unwrap();
                assert_eq!(
                    a.pairs, b.pairs,
                    "{ctx}: explore {event:?}/{extend:?}/{semantics:?}"
                );
            }
        }
    }
    // zoom rewrites both graphs to the same coarse view
    let gran = Granularity::windows(inc.domain(), 2).unwrap();
    let za = zoom_out(inc, &gran, SideTest::Any).unwrap();
    let zb = zoom_out(reb, &gran, SideTest::Any).unwrap();
    assert_eq!(
        za.node_presence_matrix(),
        zb.node_presence_matrix(),
        "{ctx}: zoomed node presence"
    );
    assert_eq!(
        za.edge_presence_matrix(),
        zb.edge_presence_matrix(),
        "{ctx}: zoomed edge presence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn append_equivalence(
        base_presence in proptest::collection::vec((0usize..BASE_NODES, 0usize..2), 0..8),
        base_edges in proptest::collection::vec((0usize..BASE_NODES, 0usize..BASE_NODES, 0usize..2), 0..8),
        specs in proptest::collection::vec(patch_spec(), 1..4),
    ) {
        for mode in [SparseMode::ForceDense, SparseMode::ForceSparse] {
            let base_labels: Vec<String> = vec!["b0".into(), "b1".into()];
            let mut g0 = base_builder(&base_labels, &base_presence, &base_edges)
                .build()
                .unwrap();
            g0.set_sparse_mode(mode);
            let patches: Vec<TimepointPatch> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| to_patch(&g0, &format!("p{i}"), s))
                .collect();

            let mut versions = GraphVersions::new(g0);
            for (i, patch) in patches.iter().enumerate() {
                // warm the transposed indexes so each append exercises the
                // incremental carry-forward rather than a lazy rebuild
                let _ = versions.current().node_presence_columns();
                let _ = versions.current().edge_presence_columns();
                let inc = versions.append_timepoint(patch).unwrap();
                prop_assert_eq!(inc.epoch(), (i + 1) as u64, "epoch stamps count appends");

                // from-scratch rebuild over the same prefix of history
                let mut labels = base_labels.clone();
                labels.extend((0..=i).map(|j| format!("p{j}")));
                let mut b = base_builder(&labels, &base_presence, &base_edges);
                for (j, p) in patches.iter().take(i + 1).enumerate() {
                    p.apply_to_builder(&mut b, TimePoint((2 + j) as u32)).unwrap();
                }
                let mut reb = b.build().unwrap();
                reb.set_sparse_mode(mode);

                assert_identical(&inc, &reb, &format!("{mode:?} epoch {}", i + 1));
            }
        }
    }
}
