//! Cross-crate integration tests: generated datasets flowing through the
//! whole pipeline — storage, IO, operators, aggregation, materialization,
//! evolution, and exploration.

use graphtempo_repro::prelude::*;

fn dblp_small() -> TemporalGraph {
    DblpConfig::scaled(0.02).generate().unwrap()
}

fn movielens_small() -> TemporalGraph {
    MovieLensConfig::scaled(0.1).generate().unwrap()
}

#[test]
fn dblp_pipeline_union_aggregate_explore() {
    let g = dblp_small();
    let n = g.domain().len();
    let gender = g.schema().id("gender").unwrap();
    let f = g.schema().category(gender, "f").unwrap();

    // union of the two decades
    let t1 = TimeSet::range(n, 0, 9);
    let t2 = TimeSet::range(n, 10, n - 1);
    let u = union(&g, &t1, &t2).unwrap();
    assert_eq!(u.n_nodes(), g.n_nodes());

    // DIST counts authors once, ALL counts appearances
    let dist = aggregate(&u, &[gender], AggMode::Distinct);
    let all = aggregate(&u, &[gender], AggMode::All);
    assert_eq!(dist.total_node_weight() as usize, g.n_nodes());
    assert!(all.total_node_weight() > dist.total_node_weight());

    // exploration finds at least one qualifying pair at k = w_th
    let mut cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![gender],
        selector: Selector::edge_1attr(f.clone(), f),
    };
    if let Some(wth) = suggest_k(&g, &cfg).unwrap() {
        cfg.k = wth;
        let out = explore(&g, &cfg).unwrap();
        assert!(!out.pairs.is_empty(), "w_th guarantees at least one pair");
        for (pair, r) in &out.pairs {
            assert!(*r >= wth);
            assert!(pair.told.max() < pair.tnew.min(), "𝒯old precedes 𝒯new");
        }
    }
}

#[test]
fn movielens_pipeline_materialized_rollup() {
    let g = movielens_small();
    let attrs: Vec<AttrId> = ["gender", "age", "occupation", "rating"]
        .iter()
        .map(|n| g.schema().id(n).unwrap())
        .collect();

    // materialization cache builds per-attribute-set stores lazily
    let cache = MaterializationCache::new(4);
    let store = cache.store_for(&g, &attrs);
    assert_eq!(store.len(), 6);
    assert_eq!(cache.len(), 1);

    // the T-distributive full-period union equals direct aggregation
    let scope = g.domain().all();
    let fast = store.union_all(&scope).unwrap();
    let direct = aggregate(&g, &attrs, AggMode::All);
    assert_eq!(fast, direct);

    // rolling the full aggregate up to (gender) matches direct ALL
    let rolled = rollup(&direct, &["gender"]).unwrap();
    let gender = g.schema().id("gender").unwrap();
    let direct_g = aggregate(&g, &[gender], AggMode::All);
    assert_eq!(rolled, direct_g);
}

#[test]
fn io_roundtrip_generated_graph() {
    let g = dblp_small();
    let dir = std::env::temp_dir().join(format!("graphtempo_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    tempo_graph::io::save_dir(&g, &dir).unwrap();
    let h = tempo_graph::io::load_dir(&dir).unwrap();
    assert_eq!(h.n_nodes(), g.n_nodes());
    assert_eq!(h.n_edges(), g.n_edges());
    // aggregate equality is a strong whole-graph check (values + presence)
    let ga = aggregate(
        &g,
        &[
            g.schema().id("gender").unwrap(),
            g.schema().id("publications").unwrap(),
        ],
        AggMode::All,
    );
    let ha = aggregate(
        &h,
        &[
            h.schema().id("gender").unwrap(),
            h.schema().id("publications").unwrap(),
        ],
        AggMode::All,
    );
    // categorical codes may differ; compare via total weights and counts
    assert_eq!(ga.total_node_weight(), ha.total_node_weight());
    assert_eq!(ga.total_edge_weight(), ha.total_edge_weight());
    assert_eq!(ga.n_nodes(), ha.n_nodes());
    assert_eq!(ga.n_edges(), ha.n_edges());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn school_homophily_supports_targeted_closure() {
    // The intro's epidemic argument: most contacts and most *stable*
    // contacts are intra-class, so class-level aggregation identifies them.
    let g = SchoolConfig::default().generate().unwrap();
    let class = g.schema().id("class").unwrap();
    let n = g.domain().len();
    let first_half = TimeSet::range(n, 0, n / 2 - 1);
    let second_half = TimeSet::range(n, n / 2, n - 1);
    let stable = intersection(&g, &first_half, &second_half).unwrap();
    let agg = aggregate(
        &stable,
        &[stable.schema().id("class").unwrap()],
        AggMode::Distinct,
    );
    let intra: u64 = agg
        .iter_edges()
        .iter()
        .filter(|((s, d), _)| s == d)
        .map(|(_, w)| w)
        .sum();
    let total = agg.total_edge_weight();
    assert!(total > 0);
    assert!(
        intra * 2 > total,
        "intra-class stable contacts should dominate: {intra}/{total}"
    );
    let _ = class;
}

#[test]
fn evolution_aggregate_consistent_with_operators() {
    // For a static attribute, evolution-aggregate totals equal the entity
    // counts of the corresponding operator graphs.
    let g = movielens_small();
    let gender = g.schema().id("gender").unwrap();
    let n = g.domain().len();
    let t1 = TimeSet::range(n, 0, 2);
    let t2 = TimeSet::range(n, 3, n - 1);
    let evo = evolution_aggregate(&g, &t1, &t2, &[gender], None).unwrap();
    let totals = evo.node_totals();
    let stable = intersection(&g, &t1, &t2).unwrap();
    assert_eq!(totals.stability as usize, stable.n_nodes());
    let gone = difference(&g, &t1, &t2).unwrap();
    // difference keeps surviving endpoints of deleted edges too (and masks
    // timestamps to 𝒯₁), so check disappearance against the source graph
    let strictly_gone = gone
        .node_ids()
        .filter(|&nd| {
            let src = g.node_id(gone.node_name(nd)).expect("node from source");
            !g.node_timestamp(src).intersects(&t2)
        })
        .count();
    let strictly_gone_src = g
        .node_ids()
        .filter(|&nd| {
            let tau = g.node_timestamp(nd);
            tau.intersects(&t1) && !tau.intersects(&t2)
        })
        .count();
    assert_eq!(totals.shrinkage as usize, strictly_gone_src);
    assert_eq!(strictly_gone, strictly_gone_src);
}

#[test]
fn exploration_all_cases_sane_on_movielens() {
    let g = movielens_small();
    let gender = g.schema().id("gender").unwrap();
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 5,
                    attrs: vec![gender],
                    selector: Selector::AllEdges,
                };
                let fast = explore(&g, &cfg).unwrap();
                let slow = explore_naive(&g, &cfg).unwrap();
                assert_eq!(fast.pairs, slow.pairs, "{event:?}/{extend:?}/{semantics:?}");
                for (pair, r) in &fast.pairs {
                    assert!(*r >= 5);
                    assert!(!pair.told.is_empty() && !pair.tnew.is_empty());
                }
            }
        }
    }
}
